//! Abstract syntax of PSKETCH programs.

use crate::error::Span;
use crate::regen::Regex;
use std::fmt;

/// A type in the surface language.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Type {
    /// No value (function returns only).
    Void,
    /// Fixed-width signed integer. `Object` is an alias for `Int`
    /// (payload values are opaque integers).
    Int,
    /// Boolean; `bit` is an alias.
    Bool,
    /// Nullable pointer to a struct instance.
    Ref(String),
    /// Fixed-length array.
    Array(Box<Type>, usize),
}

impl Type {
    /// True for `Ref` types (nullable pointers).
    pub fn is_ref(&self) -> bool {
        matches!(self, Type::Ref(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bit"),
            Type::Ref(s) => write!(f, "{s}"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
    /// Cast a bit-array slice to an int (element 0 is the LSB).
    BitsToInt,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (constant divisors only)
    Div,
    /// `%` (constant divisors only)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// True for `==`/`!=`, which also apply to pointers and booleans.
    pub fn is_equality(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne)
    }

    /// True for operators producing booleans.
    pub fn is_boolean_result(self) -> bool {
        !matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// Surface spelling.
    pub fn spelling(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// The null pointer.
    Null(Span),
    /// A bit-array literal from a string like `"1100"`; index 0 is the
    /// leftmost character.
    BitArray(Vec<bool>, Span),
    /// Variable reference.
    Var(String, Span),
    /// Field selection `e.f`.
    Field(Box<Expr>, String, Span),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>, Span),
    /// Array slice `a[start::len]`; `len` is a compile-time constant.
    Slice(Box<Expr>, Box<Expr>, usize, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// Function or builtin call.
    Call(String, Vec<Expr>, Span),
    /// Allocation `new S(args…)`; arguments initialize the first
    /// fields of `S` in declaration order.
    New(String, Vec<Expr>, Span),
    /// A primitive hole `??` / `??(w)` with optional explicit bit width.
    Hole(Option<u32>, Span),
    /// A regular-expression expression generator `{| re |}`.
    Gen(Regex, Span),
    /// INTERNAL (produced by desugaring, never by the parser): a
    /// reference to allocated hole `id` with the given domain size; the
    /// expression's value is the hole's chosen integer in `0..domain`.
    HoleRef(u32, u64, Span),
    /// INTERNAL (produced by desugaring): hole `id` selects one of the
    /// alternative subexpressions.
    Choice(u32, Vec<Expr>, Span),
}

impl Expr {
    /// The source location of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Null(s)
            | Expr::BitArray(_, s)
            | Expr::Var(_, s)
            | Expr::Field(_, _, s)
            | Expr::Index(_, _, s)
            | Expr::Slice(_, _, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call(_, _, s)
            | Expr::New(_, _, s)
            | Expr::Hole(_, s)
            | Expr::Gen(_, s)
            | Expr::HoleRef(_, _, s)
            | Expr::Choice(_, _, s) => *s,
        }
    }

    /// True when the expression is a syntactically valid assignment
    /// target (variable, field chain, array element/slice, or a
    /// generator that may expand to one).
    pub fn is_lvalue(&self) -> bool {
        match self {
            Expr::Var(..) | Expr::Field(..) | Expr::Index(..) | Expr::Slice(..) | Expr::Gen(..) => {
                true
            }
            Expr::Choice(_, alts, _) => alts.iter().all(Expr::is_lvalue),
            _ => false,
        }
    }
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    Decl(Type, String, Option<Expr>, Span),
    /// Assignment `lhs = rhs`.
    Assign(Expr, Expr, Span),
    /// Conditional.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>, Span),
    /// Loop, unrolled to a bound during lowering.
    While(Expr, Box<Stmt>, Span),
    /// Return from the enclosing function.
    Return(Option<Expr>, Span),
    /// Correctness assertion.
    Assert(Expr, Span),
    /// Statement sequence `{ … }`.
    Block(Vec<Stmt>),
    /// Expression evaluated for effect (a call).
    Expr(Expr, Span),
    /// `atomic { … }` or conditional `atomic (cond) { … }`.
    Atomic(Option<Expr>, Box<Stmt>, Span),
    /// `reorder { … }`: the synthesizer picks a permutation of the
    /// child statements.
    Reorder(Vec<Stmt>, Span),
    /// `fork (i; n) { … }`: spawn `n` threads running the body.
    Fork(String, Expr, Box<Stmt>, Span),
    /// `repeat (n) s`: synthesis-time replication with fresh holes;
    /// `n` may itself be a hole (bounded by configuration).
    Repeat(Expr, Box<Stmt>, Span),
}

impl Stmt {
    /// The source location of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl(_, _, _, s)
            | Stmt::Assign(_, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::While(_, _, s)
            | Stmt::Return(_, s)
            | Stmt::Assert(_, s)
            | Stmt::Expr(_, s)
            | Stmt::Atomic(_, _, s)
            | Stmt::Reorder(_, s)
            | Stmt::Fork(_, _, _, s)
            | Stmt::Repeat(_, _, s) => *s,
            Stmt::Block(ss) => ss.first().map(Stmt::span).unwrap_or_default(),
        }
    }
}

/// A struct (record) declaration. Instances live on the bounded heap
/// and are always accessed through `Ref` pointers.
#[derive(Clone, PartialEq, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order: (type, name, optional initializer
    /// constant).
    pub fields: Vec<Field>,
    /// Declaration site.
    pub span: Span,
}

/// A field of a struct.
#[derive(Clone, PartialEq, Debug)]
pub struct Field {
    /// Field type (int, bool or ref; arrays not allowed in structs).
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Default value assigned by `new` (constant expression).
    pub init: Option<Expr>,
}

/// A function parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Stmt,
    /// `implements spec`: the sequential specification this function
    /// must be behaviourally equivalent to.
    pub implements: Option<String>,
    /// Whether this is the `harness` entry point.
    pub is_harness: bool,
    /// `generator` functions are inlined with *fresh* holes at every
    /// call site (Sketch semantics); ordinary functions share their
    /// holes across call sites.
    pub is_generator: bool,
    /// Declaration site.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDef {
    /// Variable type.
    pub ty: Type,
    /// Variable name.
    pub name: String,
    /// Optional initializer (evaluated once, before the harness).
    pub init: Option<Expr>,
    /// Declaration site.
    pub span: Span,
}

/// A complete parsed program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Struct declarations.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions (including the harness).
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Finds a struct by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The unique `harness` function.
    pub fn harness(&self) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.is_harness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Array(Box::new(Type::Bool), 8).to_string(), "bit[8]");
        assert_eq!(Type::Ref("Node".into()).to_string(), "Node");
    }

    #[test]
    fn lvalue_classification() {
        let s = Span::default();
        assert!(Expr::Var("x".into(), s).is_lvalue());
        assert!(Expr::Field(Box::new(Expr::Var("x".into(), s)), "f".into(), s).is_lvalue());
        assert!(!Expr::Int(3, s).is_lvalue());
        assert!(!Expr::Call("f".into(), vec![], s).is_lvalue());
    }

    #[test]
    fn binop_props() {
        assert!(BinOp::Eq.is_equality());
        assert!(!BinOp::Lt.is_equality());
        assert!(BinOp::Lt.is_boolean_result());
        assert!(!BinOp::Add.is_boolean_result());
        assert_eq!(BinOp::Le.spelling(), "<=");
    }
}
