#![warn(missing_docs)]
//! The PSKETCH surface language.
//!
//! This crate implements the front end for the sketch language of
//! *Sketching Concurrent Data Structures* (PLDI 2008): a C/Java-like
//! imperative language extended with
//!
//! * synthesis constructs — primitive holes `??` / `??(w)`,
//!   regular-expression expression generators `{| re |}`,
//!   `reorder { … }` blocks and `repeat (n) s` replication — and
//! * concurrency constructs — `fork (i; N) { … }`, `atomic { … }`
//!   sections and conditional atomics `atomic (cond) { … }`.
//!
//! The pipeline is: [`preprocess()`] (`#define` macros) → [`lex()`] →
//! [`parse()`] → [`typecheck()`]. The output [`ast::Program`] is consumed
//! by `psketch-ir`, which desugars the synthesis constructs into
//! integer holes.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     struct Node { int key; Node next; }
//!     harness void main() {
//!         Node n = new Node(3);
//!         assert n.key == 3;
//!     }
//! "#;
//! let program = psketch_lang::parse_program(src).unwrap();
//! assert_eq!(program.structs.len(), 1);
//! psketch_lang::typecheck(&program).unwrap();
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod preprocess;
pub mod pretty;
pub mod regen;
pub mod token;
pub mod typecheck;

pub use ast::Program;
pub use error::{SourceError, SourceResult};
pub use lexer::lex;
pub use parser::parse;
pub use preprocess::preprocess;
pub use typecheck::{typecheck, TypeEnv};

/// Convenience: preprocess, lex and parse a program in one call.
///
/// # Errors
///
/// Returns a [`SourceError`] describing the first macro, lexical or
/// syntax error encountered.
pub fn parse_program(source: &str) -> SourceResult<Program> {
    let expanded = preprocess(source)?;
    let tokens = lex(&expanded)?;
    parse(&tokens)
}

/// Parse and typecheck a program.
///
/// # Errors
///
/// Returns the first front-end error (macro, lexical, syntax or type).
pub fn check_program(source: &str) -> SourceResult<Program> {
    let p = parse_program(source)?;
    typecheck(&p)?;
    Ok(p)
}
