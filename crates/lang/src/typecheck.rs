//! Type checking and name resolution.
//!
//! The type system is deliberately small: `int` (fixed-width signed),
//! `bit`/`bool` (freely inter-coercible with `int`, matching the
//! paper's sketches which mix `boolean taken = 1` styles), nullable
//! struct references, and fixed-length arrays. The checker is reused by
//! the desugaring phase (`psketch-ir`) to filter ill-typed
//! regular-expression generator alternatives, so [`Scope`] and
//! [`infer_expr`] are public.

use crate::ast::*;
use crate::error::{Phase, SourceError, SourceResult, Span};
use std::collections::HashMap;

/// Global typing context: structs, globals and function signatures.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    structs: HashMap<String, StructDef>,
    globals: HashMap<String, Type>,
    fns: HashMap<String, (Vec<Type>, Type)>,
}

impl TypeEnv {
    /// Builds the environment from a program's declarations.
    ///
    /// # Errors
    ///
    /// Reports duplicate declarations and ill-formed struct fields.
    pub fn from_program(p: &Program) -> SourceResult<TypeEnv> {
        let mut env = TypeEnv::default();
        for s in &p.structs {
            if env.structs.insert(s.name.clone(), s.clone()).is_some() {
                return Err(terr(s.span, format!("duplicate struct {}", s.name)));
            }
        }
        for s in &p.structs {
            for f in &s.fields {
                match &f.ty {
                    Type::Int | Type::Bool => {}
                    Type::Ref(t) if env.structs.contains_key(t) => {}
                    Type::Ref(t) => {
                        return Err(terr(
                            s.span,
                            format!("unknown struct {t} in field {}", f.name),
                        ))
                    }
                    other => {
                        return Err(terr(
                            s.span,
                            format!("field {} has unsupported type {other}", f.name),
                        ))
                    }
                }
            }
        }
        for g in &p.globals {
            env.check_type(&g.ty, g.span)?;
            if env.globals.insert(g.name.clone(), g.ty.clone()).is_some() {
                return Err(terr(g.span, format!("duplicate global {}", g.name)));
            }
        }
        for f in &p.functions {
            env.check_type(&f.ret, f.span)?;
            for param in &f.params {
                env.check_type(&param.ty, f.span)?;
            }
            let sig = (
                f.params.iter().map(|q| q.ty.clone()).collect(),
                f.ret.clone(),
            );
            if env.fns.insert(f.name.clone(), sig).is_some() {
                return Err(terr(f.span, format!("duplicate function {}", f.name)));
            }
        }
        Ok(env)
    }

    fn check_type(&self, ty: &Type, span: Span) -> SourceResult<()> {
        match ty {
            Type::Ref(name) if !self.structs.contains_key(name) => {
                Err(terr(span, format!("unknown type {name}")))
            }
            Type::Array(inner, _) => self.check_type(inner, span),
            _ => Ok(()),
        }
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Looks up a global's type.
    pub fn global(&self, name: &str) -> Option<&Type> {
        self.globals.get(name)
    }

    /// Looks up a function signature `(params, ret)`.
    pub fn function(&self, name: &str) -> Option<&(Vec<Type>, Type)> {
        self.fns.get(name)
    }
}

/// A lexical scope stack over a [`TypeEnv`].
#[derive(Debug, Clone)]
pub struct Scope<'e> {
    env: &'e TypeEnv,
    frames: Vec<HashMap<String, Type>>,
}

impl<'e> Scope<'e> {
    /// A fresh scope with one (function-level) frame.
    pub fn new(env: &'e TypeEnv) -> Scope<'e> {
        Scope {
            env,
            frames: vec![HashMap::new()],
        }
    }

    /// The underlying environment.
    pub fn env(&self) -> &'e TypeEnv {
        self.env
    }

    /// Enters a nested block.
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Leaves a nested block.
    pub fn pop(&mut self) {
        self.frames.pop();
    }

    /// Declares a local in the innermost frame.
    pub fn declare(&mut self, name: &str, ty: Type) {
        self.frames
            .last_mut()
            .expect("scope has a frame")
            .insert(name.to_string(), ty);
    }

    /// Resolves a name: innermost local first, then globals.
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        for frame in self.frames.iter().rev() {
            if let Some(t) = frame.get(name) {
                return Some(t);
            }
        }
        self.env.globals.get(name)
    }
}

fn terr(span: Span, msg: impl Into<String>) -> SourceError {
    SourceError::new(Phase::Type, span, msg)
}

/// Can a value of `from` be used where `to` is expected?
/// `int` and `bit` inter-coerce; `null` fits any reference.
pub fn assignable(from: &Type, to: &Type) -> bool {
    match (from, to) {
        (a, b) if a == b => true,
        (Type::Int, Type::Bool) | (Type::Bool, Type::Int) => true,
        _ => false,
    }
}

/// Infers the type of `e` in `scope`.
///
/// `expected` guides holes and generators: a bare `??` takes the
/// expected type (defaulting to `int`); a generator keeps only the
/// alternatives whose parsed expression fits.
///
/// # Errors
///
/// Returns a type error describing the first inconsistency.
pub fn infer_expr(scope: &Scope<'_>, e: &Expr, expected: Option<&Type>) -> SourceResult<Type> {
    let ty = match e {
        Expr::Int(_, _) => Type::Int,
        Expr::Bool(_, _) => Type::Bool,
        Expr::Null(span) => match expected {
            Some(t @ Type::Ref(_)) => t.clone(),
            None => {
                return Err(terr(
                    *span,
                    "cannot infer the reference type of 'null' here",
                ))
            }
            Some(other) => return Err(terr(*span, format!("null used where {other} expected"))),
        },
        Expr::BitArray(bits, _) => Type::Array(Box::new(Type::Bool), bits.len()),
        Expr::Var(name, span) => scope
            .lookup(name)
            .cloned()
            .ok_or_else(|| terr(*span, format!("unknown variable {name}")))?,
        Expr::Field(base, fname, span) => {
            let bt = infer_expr(scope, base, None)?;
            let Type::Ref(sname) = &bt else {
                return Err(terr(*span, format!("field access on non-struct type {bt}")));
            };
            let sd = scope
                .env
                .struct_def(sname)
                .ok_or_else(|| terr(*span, format!("unknown struct {sname}")))?;
            sd.fields
                .iter()
                .find(|f| f.name == *fname)
                .map(|f| f.ty.clone())
                .ok_or_else(|| terr(*span, format!("struct {sname} has no field {fname}")))?
        }
        Expr::Index(base, ix, span) => {
            let bt = infer_expr(scope, base, None)?;
            let it = infer_expr(scope, ix, Some(&Type::Int))?;
            if !assignable(&it, &Type::Int) {
                return Err(terr(*span, format!("array index has type {it}, not int")));
            }
            match bt {
                Type::Array(inner, _) => *inner,
                other => return Err(terr(*span, format!("indexing non-array type {other}"))),
            }
        }
        Expr::Slice(base, start, len, span) => {
            let bt = infer_expr(scope, base, None)?;
            let st = infer_expr(scope, start, Some(&Type::Int))?;
            if !assignable(&st, &Type::Int) {
                return Err(terr(*span, format!("slice start has type {st}, not int")));
            }
            match bt {
                Type::Array(inner, n) => {
                    if *len > n {
                        return Err(terr(
                            *span,
                            format!("slice of length {len} from array of length {n}"),
                        ));
                    }
                    Type::Array(inner, *len)
                }
                other => return Err(terr(*span, format!("slicing non-array type {other}"))),
            }
        }
        Expr::Unary(op, inner, span) => {
            let it = infer_expr(
                scope,
                inner,
                match op {
                    UnOp::Not => Some(&Type::Bool),
                    UnOp::Neg => Some(&Type::Int),
                    UnOp::BitsToInt => None,
                },
            )?;
            match op {
                UnOp::Not => {
                    if !assignable(&it, &Type::Bool) {
                        return Err(terr(*span, format!("'!' applied to {it}")));
                    }
                    Type::Bool
                }
                UnOp::Neg => {
                    if !assignable(&it, &Type::Int) {
                        return Err(terr(*span, format!("'-' applied to {it}")));
                    }
                    Type::Int
                }
                UnOp::BitsToInt => match it {
                    Type::Array(inner, _) if *inner == Type::Bool => Type::Int,
                    other => return Err(terr(*span, format!("(int) cast applied to {other}"))),
                },
            }
        }
        Expr::Binary(op, l, r, span) => {
            if op.is_equality() {
                // Try to type one side to constrain the other (for null).
                let lt = infer_expr(scope, l, None).ok();
                let rt = match &lt {
                    Some(t) => infer_expr(scope, r, Some(t))?,
                    None => infer_expr(scope, r, None)?,
                };
                let lt = match lt {
                    Some(t) => t,
                    None => infer_expr(scope, l, Some(&rt))?,
                };
                let comparable = assignable(&lt, &rt) || assignable(&rt, &lt);
                if !comparable {
                    return Err(terr(*span, format!("cannot compare {lt} with {rt}")));
                }
                Type::Bool
            } else {
                let operand = match op {
                    BinOp::And | BinOp::Or => Type::Bool,
                    _ => Type::Int,
                };
                let lt = infer_expr(scope, l, Some(&operand))?;
                let rt = infer_expr(scope, r, Some(&operand))?;
                if !assignable(&lt, &operand) || !assignable(&rt, &operand) {
                    return Err(terr(
                        *span,
                        format!("operator '{}' applied to {lt} and {rt}", op.spelling()),
                    ));
                }
                if op.is_boolean_result() {
                    Type::Bool
                } else {
                    Type::Int
                }
            }
        }
        Expr::Call(name, args, span) => infer_call(scope, name, args, *span)?,
        Expr::New(sname, args, span) => {
            let sd = scope
                .env
                .struct_def(sname)
                .ok_or_else(|| terr(*span, format!("unknown struct {sname}")))?
                .clone();
            if args.len() > sd.fields.len() {
                return Err(terr(
                    *span,
                    format!(
                        "new {sname}: {} arguments for {} fields",
                        args.len(),
                        sd.fields.len()
                    ),
                ));
            }
            for (arg, field) in args.iter().zip(&sd.fields) {
                let at = infer_expr(scope, arg, Some(&field.ty))?;
                if !assignable(&at, &field.ty) {
                    return Err(terr(
                        arg.span(),
                        format!(
                            "new {sname}: argument of type {at} for field {} of type {}",
                            field.name, field.ty
                        ),
                    ));
                }
            }
            Type::Ref(sname.clone())
        }
        Expr::Hole(_, _) => match expected {
            Some(Type::Bool) => Type::Bool,
            _ => Type::Int,
        },
        Expr::HoleRef(_, _, _) => match expected {
            Some(Type::Bool) => Type::Bool,
            _ => Type::Int,
        },
        Expr::Choice(_, alts, span) => {
            let mut ty = None;
            for a in alts {
                let at = infer_expr(scope, a, expected)?;
                ty.get_or_insert(at);
            }
            ty.ok_or_else(|| terr(*span, "empty choice"))?
        }
        Expr::Gen(re, span) => {
            // At least one alternative must parse and typecheck.
            let alts = generator_alternatives(scope, re, expected, *span)?;
            match expected {
                Some(t) => t.clone(),
                None => infer_expr(scope, &alts[0], None)?,
            }
        }
    };
    Ok(ty)
}

/// Enumerates, parses and type-filters the alternatives of a generator.
///
/// # Errors
///
/// Fails when the language is too large (cap 4096) or no alternative
/// is a well-typed expression of the expected type.
pub fn generator_alternatives(
    scope: &Scope<'_>,
    re: &crate::regen::Regex,
    expected: Option<&Type>,
    span: Span,
) -> SourceResult<Vec<Expr>> {
    let strings = re.enumerate(4096).map_err(|e| terr(span, e.to_string()))?;
    let mut alts = Vec::new();
    for toks in strings {
        let tokens: Vec<crate::token::Token> = toks
            .into_iter()
            .map(|tok| crate::token::Token { tok, span })
            .collect();
        // The paper's `(!)? (a == b | …)` idiom: a leading `!` negates
        // the *whole* alternative (regex grouping cannot emit literal
        // parentheses, and `!a == b` would otherwise parse as
        // `(!a) == b`).
        let parsed = match tokens.split_first() {
            Some((first, rest)) if first.tok == crate::token::Tok::Bang && !rest.is_empty() => {
                parse_expr_tokens(rest)
                    .map(|e| Expr::Unary(UnOp::Not, Box::new(e), span))
                    .or_else(|_| parse_expr_tokens(&tokens))
            }
            _ => parse_expr_tokens(&tokens),
        };
        let Ok(expr) = parsed else {
            continue;
        };
        let fits = match expected {
            Some(t) => matches!(infer_expr(scope, &expr, Some(t)), Ok(at) if assignable(&at, t)),
            None => infer_expr(scope, &expr, None).is_ok(),
        };
        if fits {
            alts.push(expr);
        }
    }
    if alts.is_empty() {
        return Err(terr(
            span,
            format!(
                "generator {{| {re} |}} has no well-typed alternative{}",
                match expected {
                    Some(t) => format!(" of type {t}"),
                    None => String::new(),
                }
            ),
        ));
    }
    Ok(alts)
}

/// Parses a complete token slice as a single expression.
///
/// # Errors
///
/// Fails if the tokens are not exactly one expression.
pub fn parse_expr_tokens(tokens: &[crate::token::Token]) -> SourceResult<Expr> {
    // Wrap in a statement so we can reuse the program parser:
    // `void f() { return <expr>; }` — cheap and keeps one grammar.
    let mut text = String::from("void genalt() { return ");
    for t in tokens {
        text.push_str(&t.tok.spelling());
        text.push(' ');
    }
    text.push_str("; }");
    let toks = crate::lexer::lex(&text)?;
    let p = crate::parser::parse(&toks)?;
    let Stmt::Block(ss) = &p.functions[0].body else {
        unreachable!()
    };
    match &ss[..] {
        [Stmt::Return(Some(e), _)] => Ok(e.clone()),
        _ => Err(terr(Span::default(), "not a single expression")),
    }
}

/// Builtin signature lookup. Builtins are type-checked structurally
/// (e.g. `AtomicSwap`'s location and value must agree).
fn infer_call(scope: &Scope<'_>, name: &str, args: &[Expr], span: Span) -> SourceResult<Type> {
    match name {
        "AtomicSwap" | "atomicSwap" => {
            if args.len() != 2 {
                return Err(terr(span, "AtomicSwap takes (location, value)"));
            }
            if !args[0].is_lvalue() {
                return Err(terr(span, "AtomicSwap location must be assignable"));
            }
            let lt = infer_expr(scope, &args[0], None)?;
            let vt = infer_expr(scope, &args[1], Some(&lt))?;
            if !assignable(&vt, &lt) {
                return Err(terr(
                    span,
                    format!("AtomicSwap of {vt} into location of type {lt}"),
                ));
            }
            Ok(lt)
        }
        "CAS" => {
            if args.len() != 3 {
                return Err(terr(span, "CAS takes (location, old, new)"));
            }
            if !args[0].is_lvalue() {
                return Err(terr(span, "CAS location must be assignable"));
            }
            let lt = infer_expr(scope, &args[0], None)?;
            for a in &args[1..] {
                let at = infer_expr(scope, a, Some(&lt))?;
                if !assignable(&at, &lt) {
                    return Err(terr(
                        span,
                        format!("CAS operand of type {at}, location {lt}"),
                    ));
                }
            }
            Ok(Type::Bool)
        }
        "AtomicReadAndDecr" | "AtomicReadAndIncr" => {
            if args.len() != 1 || !args[0].is_lvalue() {
                return Err(terr(
                    span,
                    format!("{name} takes one assignable int location"),
                ));
            }
            let lt = infer_expr(scope, &args[0], Some(&Type::Int))?;
            if !assignable(&lt, &Type::Int) {
                return Err(terr(span, format!("{name} on non-int location {lt}")));
            }
            Ok(Type::Int)
        }
        "pid" | "nthreads" => {
            if !args.is_empty() {
                return Err(terr(span, format!("{name}() takes no arguments")));
            }
            Ok(Type::Int)
        }
        _ => {
            let (params, ret) = scope
                .env
                .function(name)
                .ok_or_else(|| terr(span, format!("unknown function {name}")))?
                .clone();
            if params.len() != args.len() {
                return Err(terr(
                    span,
                    format!(
                        "{name} expects {} argument(s), got {}",
                        params.len(),
                        args.len()
                    ),
                ));
            }
            for (a, pt) in args.iter().zip(&params) {
                let at = infer_expr(scope, a, Some(pt))?;
                if !assignable(&at, pt) {
                    return Err(terr(
                        a.span(),
                        format!("argument of type {at} where {pt} expected"),
                    ));
                }
            }
            Ok(ret)
        }
    }
}

/// Names that cannot be used for user functions.
pub const BUILTINS: &[&str] = &[
    "AtomicSwap",
    "atomicSwap",
    "CAS",
    "AtomicReadAndDecr",
    "AtomicReadAndIncr",
    "pid",
    "nthreads",
];

/// Type-checks a whole program.
///
/// # Errors
///
/// Returns the first type error found.
pub fn typecheck(p: &Program) -> SourceResult<TypeEnv> {
    let env = TypeEnv::from_program(p)?;
    for f in &p.functions {
        if BUILTINS.contains(&f.name.as_str()) {
            return Err(terr(f.span, format!("{} is a builtin", f.name)));
        }
        let mut scope = Scope::new(&env);
        for param in &f.params {
            scope.declare(&param.name, param.ty.clone());
        }
        check_stmt(&mut scope, &f.body, &f.ret)?;
        if let Some(spec) = &f.implements {
            let (sp, sr) = env
                .function(spec)
                .ok_or_else(|| terr(f.span, format!("unknown spec function {spec}")))?;
            let fp: Vec<Type> = f.params.iter().map(|q| q.ty.clone()).collect();
            if *sp != fp || *sr != f.ret {
                return Err(terr(
                    f.span,
                    format!("{} and its spec {spec} have different signatures", f.name),
                ));
            }
        }
    }
    if p.functions.iter().filter(|f| f.is_harness).count() > 1 {
        return Err(terr(Span::default(), "multiple harness functions"));
    }
    for g in &p.globals {
        if let Some(init) = &g.init {
            let scope = Scope::new(&env);
            let t = infer_expr(&scope, init, Some(&g.ty))?;
            if !assignable(&t, &g.ty) {
                return Err(terr(
                    g.span,
                    format!("global {} of type {} initialized with {t}", g.name, g.ty),
                ));
            }
        }
    }
    Ok(env)
}

fn check_stmt(scope: &mut Scope<'_>, s: &Stmt, ret: &Type) -> SourceResult<()> {
    match s {
        Stmt::Block(ss) => {
            scope.push();
            for s in ss {
                check_stmt(scope, s, ret)?;
            }
            scope.pop();
            Ok(())
        }
        Stmt::Decl(ty, name, init, span) => {
            scope.env().check_type(ty, *span)?;
            if let Some(e) = init {
                let t = infer_expr(scope, e, Some(ty))?;
                if !assignable(&t, ty) {
                    return Err(terr(
                        *span,
                        format!("declaring {name}: {ty} initialized with {t}"),
                    ));
                }
            }
            scope.declare(name, ty.clone());
            Ok(())
        }
        Stmt::Assign(lhs, rhs, span) => {
            if let Expr::Gen(re, gspan) = lhs {
                // L-value generator: at least one alternative must be a
                // typeable l-value; pairing with the rhs happens during
                // desugaring.
                let alts = generator_alternatives(scope, re, None, *gspan)?;
                if !alts.iter().any(|a| a.is_lvalue()) {
                    return Err(terr(
                        *gspan,
                        "generator on the left of '=' has no l-value alternative",
                    ));
                }
                infer_expr(scope, rhs, None)?;
                return Ok(());
            }
            let lt = infer_expr(scope, lhs, None)?;
            let rt = infer_expr(scope, rhs, Some(&lt))?;
            if !assignable(&rt, &lt) {
                return Err(terr(
                    *span,
                    format!("assigning {rt} to location of type {lt}"),
                ));
            }
            Ok(())
        }
        Stmt::If(c, t, e, span) => {
            let ct = infer_expr(scope, c, Some(&Type::Bool))?;
            if !assignable(&ct, &Type::Bool) {
                return Err(terr(*span, format!("if condition has type {ct}")));
            }
            check_stmt(scope, t, ret)?;
            if let Some(e) = e {
                check_stmt(scope, e, ret)?;
            }
            Ok(())
        }
        Stmt::While(c, body, span) => {
            let ct = infer_expr(scope, c, Some(&Type::Bool))?;
            if !assignable(&ct, &Type::Bool) {
                return Err(terr(*span, format!("while condition has type {ct}")));
            }
            check_stmt(scope, body, ret)
        }
        Stmt::Return(e, span) => match (e, ret) {
            (None, Type::Void) => Ok(()),
            (None, other) => Err(terr(*span, format!("empty return in {other} function"))),
            (Some(_), Type::Void) => Err(terr(*span, "returning a value from a void function")),
            (Some(e), other) => {
                let t = infer_expr(scope, e, Some(other))?;
                if !assignable(&t, other) {
                    return Err(terr(*span, format!("returning {t} from {other} function")));
                }
                Ok(())
            }
        },
        Stmt::Assert(e, span) => {
            let t = infer_expr(scope, e, Some(&Type::Bool))?;
            if !assignable(&t, &Type::Bool) {
                return Err(terr(*span, format!("assert condition has type {t}")));
            }
            Ok(())
        }
        Stmt::Expr(e, span) => match e {
            Expr::Call(..) => {
                infer_expr(scope, e, None)?;
                Ok(())
            }
            _ => Err(terr(*span, "expression statement must be a call")),
        },
        Stmt::Atomic(cond, body, span) => {
            if let Some(c) = cond {
                let t = infer_expr(scope, c, Some(&Type::Bool))?;
                if !assignable(&t, &Type::Bool) {
                    return Err(terr(*span, format!("atomic condition has type {t}")));
                }
            }
            check_stmt(scope, body, ret)
        }
        Stmt::Reorder(ss, _) => {
            scope.push();
            for s in ss {
                check_stmt(scope, s, ret)?;
            }
            scope.pop();
            Ok(())
        }
        Stmt::Fork(var, count, body, span) => {
            let ct = infer_expr(scope, count, Some(&Type::Int))?;
            if !assignable(&ct, &Type::Int) {
                return Err(terr(*span, format!("fork count has type {ct}")));
            }
            scope.push();
            scope.declare(var, Type::Int);
            check_stmt(scope, body, ret)?;
            scope.pop();
            Ok(())
        }
        Stmt::Repeat(n, body, span) => {
            let nt = infer_expr(scope, n, Some(&Type::Int))?;
            if !assignable(&nt, &Type::Int) {
                return Err(terr(*span, format!("repeat count has type {nt}")));
            }
            check_stmt(scope, body, ret)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn ok(src: &str) {
        let p = parse_program(src).unwrap();
        typecheck(&p).unwrap_or_else(|e| panic!("{e} in {src:?}"));
    }

    fn bad(src: &str) -> String {
        let p = parse_program(src).unwrap();
        typecheck(&p).unwrap_err().to_string()
    }

    #[test]
    fn accepts_basic_programs() {
        ok("int inc(int x) { return x + 1; } harness void main() { assert inc(2) == 3; }");
        ok("struct N { int v; N next; } N head; void f() { head = new N(1); head.next = null; }");
        ok("void f() { int x = true; bit b = 3; while (x) { x = x - 1; } }");
    }

    #[test]
    fn accepts_builtins() {
        ok("struct E { int taken; } E e; void f() { int old = AtomicSwap(e.taken, 1); }");
        ok("struct E { E next; } E a; E b; void f() { bit c = CAS(a.next, null, b); }");
        ok("int count; void f() { int cv = AtomicReadAndDecr(count); assert pid() < nthreads(); }");
    }

    #[test]
    fn accepts_sketch_constructs() {
        ok("int t; void f() { int x = ??; reorder { t = 1; t = 2; } repeat (2) { t = ??; } }");
        ok("struct E { E next; int taken; } E tail; void f() { E tmp = {| tail(.next)? | null |}; }");
    }

    #[test]
    fn rejects_type_errors() {
        assert!(bad("void f() { int x = y; }").contains("unknown variable"));
        assert!(bad("struct N { int v; } N n; void f() { n = 3; }").contains("assigning"));
        assert!(bad("void f() { assert null == null; }").contains("infer"));
        assert!(bad("int f() { return; }").contains("empty return"));
        assert!(bad("void f() { 1 + 1; }").contains("must be a call"));
        assert!(bad("void f() { f(1); }").contains("argument"));
        assert!(bad("void g() { h(); }").contains("unknown function"));
        assert!(bad("struct N { M x; }").contains("unknown struct"));
    }

    #[test]
    fn rejects_bad_generator() {
        // No alternative is well-typed: `q` undefined.
        assert!(bad("void f() { int x = {| q | r |}; }").contains("no well-typed"));
    }

    #[test]
    fn generator_lvalue_filtering() {
        ok("struct E { E next; } E tail; E tmp;
            void f() { {| tail(.next)? | null |} = tmp; }");
        assert!(bad("void f() { {| 1 | 2 |} = 3; }").contains("l-value"));
    }

    #[test]
    fn null_needs_ref_context() {
        ok("struct N { int v; } N g; void f() { if (g == null) { g = null; } }");
        assert!(bad("void f() { int x = 3; assert x == null; }").contains("null"));
    }

    #[test]
    fn atomics_structural_checks() {
        assert!(bad("void f() { int x = AtomicSwap(3, 4); }").contains("assignable"));
        assert!(
            bad("struct N { int v; } N a; void f() { int x = AtomicSwap(a.v, null); }")
                .contains("null")
        );
    }

    #[test]
    fn implements_signature_check() {
        ok("int s(int x) { return x; } int f(int x) implements s { return x; }");
        assert!(
            bad("int s(int x) { return x; } bit f(int x) implements s { return true; }")
                .contains("signatures")
        );
    }

    #[test]
    fn array_checks() {
        ok("void f() { int[4] a; a[0] = 1; int x = a[3]; int[2] b = a[1::2]; }");
        assert!(bad("void f() { int[4] a; int[8] b = a[0::8]; }").contains("slice"));
        assert!(bad("void f() { int x; int y = x[0]; }").contains("non-array"));
        ok("void f(bit[8] b) { int x = (int) b[0::2]; }");
        assert!(bad("void f() { int x = (int) 3; }").contains("cast"));
    }

    #[test]
    fn fork_declares_index() {
        ok("harness void main() { fork (i; 2) { int x = i + 1; } }");
        assert!(
            bad("harness void main() { fork (i; 2) { } assert i == 0; }")
                .contains("unknown variable")
        );
    }
}
