//! A small `#define` preprocessor.
//!
//! The paper's sketches lean on C-style macros (`#define aLocation
//! {| tail(.next)? | … |}`), so we support object-like and
//! function-like `#define`s. Directives occupy a single (possibly
//! `\`-continued) line; expansion is token-based and recursive up to a
//! fixed depth.

use crate::error::{Phase, SourceError, SourceResult, Span};
use crate::lexer::lex;
use crate::token::{Tok, Token};

const MAX_EXPANSION_DEPTH: usize = 32;

#[derive(Clone, Debug)]
struct Macro {
    params: Option<Vec<String>>,
    body: Vec<Token>,
}

/// Expands `#define` macros, returning equivalent macro-free source.
///
/// The output preserves the line structure of the input (each directive
/// line becomes blank), so downstream spans still point into the
/// original text.
///
/// # Errors
///
/// Returns a [`SourceError`] on malformed directives, unknown `#`
/// directives, unbalanced macro arguments, or runaway recursive
/// expansion.
pub fn preprocess(source: &str) -> SourceResult<String> {
    let mut macros: Vec<(String, Macro)> = Vec::new();
    let mut kept = String::new();

    // Phase 1: collect directives, blank them out of the kept text.
    let mut lines = source.lines().enumerate().peekable();
    while let Some((ix, line)) = lines.next() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let lineno = (ix + 1) as u32;
            let rest = rest.trim_start();
            let Some(def) = rest.strip_prefix("define") else {
                return Err(SourceError::new(
                    Phase::Preprocess,
                    Span::new(lineno, 1),
                    format!(
                        "unsupported directive: #{}",
                        rest.split_whitespace().next().unwrap_or("")
                    ),
                ));
            };
            let mut text = def.to_string();
            kept.push('\n');
            // Handle '\' continuations.
            while text.trim_end().ends_with('\\') {
                let t = text.trim_end();
                text = t[..t.len() - 1].to_string();
                match lines.next() {
                    Some((_, cont)) => {
                        text.push(' ');
                        text.push_str(cont);
                        kept.push('\n');
                    }
                    None => break,
                }
            }
            let (name, mac) = parse_define(&text, lineno)?;
            macros.retain(|(n, _)| *n != name);
            macros.push((name, mac));
        } else {
            kept.push_str(line);
            kept.push('\n');
        }
    }

    if macros.is_empty() {
        return Ok(kept);
    }

    // Phase 2: token-level expansion.
    let tokens = lex(&kept)?;
    let expanded = expand(&tokens, &macros, 0)?;

    // Phase 3: re-render to text. Spans are approximated by the
    // original token positions where available.
    Ok(render(&expanded))
}

fn parse_define(text: &str, lineno: u32) -> SourceResult<(String, Macro)> {
    let span = Span::new(lineno, 1);
    let err = |m: &str| SourceError::new(Phase::Preprocess, span, m.to_string());
    let text = text.trim_start();
    let name_end = text
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(text.len());
    if name_end == 0 {
        return Err(err("expected macro name after #define"));
    }
    let name = text[..name_end].to_string();
    let rest = &text[name_end..];
    // Function-like only when '(' immediately follows the name.
    if let Some(after) = rest.strip_prefix('(') {
        let close = after
            .find(')')
            .ok_or_else(|| err("missing ')' in macro parameter list"))?;
        let params: Vec<String> = after[..close]
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        let body = lex(&after[close + 1..])?;
        Ok((
            name,
            Macro {
                params: Some(params),
                body,
            },
        ))
    } else {
        let body = lex(rest)?;
        Ok((name, Macro { params: None, body }))
    }
}

fn lookup<'m>(macros: &'m [(String, Macro)], name: &str) -> Option<&'m Macro> {
    macros.iter().find(|(n, _)| n == name).map(|(_, m)| m)
}

fn expand(tokens: &[Token], macros: &[(String, Macro)], depth: usize) -> SourceResult<Vec<Token>> {
    if depth > MAX_EXPANSION_DEPTH {
        let span = tokens.first().map(|t| t.span).unwrap_or_default();
        return Err(SourceError::new(
            Phase::Preprocess,
            span,
            "macro expansion too deep (recursive macro?)",
        ));
    }
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let name = match &t.tok {
            Tok::Ident(n) => n.clone(),
            _ => {
                out.push(t.clone());
                i += 1;
                continue;
            }
        };
        let Some(mac) = lookup(macros, &name) else {
            out.push(t.clone());
            i += 1;
            continue;
        };
        match &mac.params {
            None => {
                let body = expand(&mac.body, macros, depth + 1)?;
                out.extend(reposition(body, t.span));
                i += 1;
            }
            Some(params) => {
                // Require an argument list; otherwise leave the
                // identifier alone (C behaviour).
                if tokens.get(i + 1).map(|t| &t.tok) != Some(&Tok::LParen) {
                    out.push(t.clone());
                    i += 1;
                    continue;
                }
                let (args, consumed) = collect_args(&tokens[i + 2..], t.span)?;
                if args.len() != params.len() {
                    return Err(SourceError::new(
                        Phase::Preprocess,
                        t.span,
                        format!(
                            "macro {name} expects {} argument(s), got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                let mut substituted = Vec::new();
                for bt in &mac.body {
                    match &bt.tok {
                        Tok::Ident(p) => {
                            if let Some(ix) = params.iter().position(|q| q == p) {
                                substituted.extend(args[ix].iter().cloned());
                            } else {
                                substituted.push(bt.clone());
                            }
                        }
                        _ => substituted.push(bt.clone()),
                    }
                }
                let body = expand(&substituted, macros, depth + 1)?;
                out.extend(reposition(body, t.span));
                i += 2 + consumed; // name, '(', args..., ')'
            }
        }
    }
    Ok(out)
}

/// Collects comma-separated balanced argument token lists; `rest`
/// starts just after the '('. Returns the args and the number of tokens
/// consumed including the closing ')'.
fn collect_args(rest: &[Token], span: Span) -> SourceResult<(Vec<Vec<Token>>, usize)> {
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    let mut depth = 0usize;
    for (ix, t) in rest.iter().enumerate() {
        match &t.tok {
            Tok::LParen | Tok::LBracket | Tok::GenOpen => {
                depth += 1;
                args.last_mut().unwrap().push(t.clone());
            }
            Tok::RParen if depth == 0 => {
                if args.len() == 1 && args[0].is_empty() {
                    args.clear();
                }
                return Ok((args, ix + 1));
            }
            Tok::RParen | Tok::RBracket | Tok::GenClose => {
                depth = depth.saturating_sub(1);
                args.last_mut().unwrap().push(t.clone());
            }
            Tok::Comma if depth == 0 => args.push(Vec::new()),
            _ => args.last_mut().unwrap().push(t.clone()),
        }
    }
    Err(SourceError::new(
        Phase::Preprocess,
        span,
        "unterminated macro argument list",
    ))
}

fn reposition(body: Vec<Token>, at: Span) -> Vec<Token> {
    body.into_iter()
        .map(|mut t| {
            t.span = at;
            t
        })
        .collect()
}

/// Renders tokens back to source text, one line, space-separated.
/// Token spellings are unambiguous so a later re-lex yields the same
/// stream (module positions).
fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut line = 1u32;
    for t in tokens {
        while line < t.span.line {
            out.push('\n');
            line += 1;
        }
        out.push_str(&t.tok.spelling());
        out.push(' ');
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(&preprocess(src).unwrap())
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn passthrough_without_macros() {
        let src = "int x = 1;\n";
        assert_eq!(preprocess(src).unwrap(), src);
    }

    #[test]
    fn object_macro_expands() {
        let ts = toks("#define N 5\nint x = N;");
        assert!(ts.contains(&Tok::Int(5)));
        assert!(!ts.iter().any(|t| *t == Tok::Ident("N".into())));
    }

    #[test]
    fn function_macro_expands_args() {
        let ts = toks("#define SQ(a) (a * a)\nint y = SQ(x + 1);");
        let spell: Vec<String> = ts.iter().map(|t| t.spelling()).collect();
        assert_eq!(spell.join(" "), "int y = ( x + 1 * x + 1 ) ;");
    }

    #[test]
    fn paper_style_generator_macro() {
        let src = "#define aLocation {| tail(.next)? | (tmp|newEntry).next |}\nx = aLocation;";
        let ts = toks(src);
        assert_eq!(ts[0], Tok::Ident("x".into()));
        assert_eq!(ts[1], Tok::Assign);
        assert_eq!(ts[2], Tok::GenOpen);
        assert!(ts.contains(&Tok::GenClose));
    }

    #[test]
    fn nested_macro_use() {
        let ts = toks("#define A 1\n#define B (A + A)\nint x = B;");
        let spell: Vec<String> = ts.iter().map(|t| t.spelling()).collect();
        assert_eq!(spell.join(" "), "int x = ( 1 + 1 ) ;");
    }

    #[test]
    fn macro_with_two_params() {
        let ts = toks("#define anExpr(x,y) x == y | x != y | false\nb = anExpr(tmp, q);");
        let spell: Vec<String> = ts.iter().map(|t| t.spelling()).collect();
        assert_eq!(spell.join(" "), "b = tmp == q | tmp != q | false ;");
    }

    #[test]
    fn redefinition_takes_latest() {
        let ts = toks("#define N 1\n#define N 2\nint x = N;");
        assert!(ts.contains(&Tok::Int(2)));
        assert!(!ts.contains(&Tok::Int(1)));
    }

    #[test]
    fn continuation_lines() {
        let ts = toks("#define LONG 1 + \\\n 2\nint x = LONG;");
        assert!(ts.contains(&Tok::Int(1)));
        assert!(ts.contains(&Tok::Int(2)));
    }

    #[test]
    fn errors() {
        assert!(preprocess("#include <x>").is_err());
        assert!(preprocess("#define").is_err());
        assert!(preprocess("#define F(a b\nF(1)").is_err());
        assert!(preprocess("#define F(a) a\nF(1, 2);").is_err());
        assert!(preprocess("#define A B\n#define B A\nA").is_err());
        assert!(preprocess("#define F(a) a\nF(1").is_err());
    }

    #[test]
    fn function_macro_without_parens_left_alone() {
        let ts = toks("#define F(a) a\nint F = 3;");
        assert!(ts.contains(&Tok::Ident("F".into())));
    }

    #[test]
    fn line_numbers_preserved_for_directives() {
        let out = preprocess("#define X 1\nint q;").unwrap();
        // Directive line is blanked, code stays on line 2.
        assert!(out.starts_with('\n'));
        let toks = lex(&out).unwrap();
        assert_eq!(toks[0].span.line, 2);
    }
}
