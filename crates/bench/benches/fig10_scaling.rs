//! Figure 10: synthesis scaling with candidate-space size.
//!
//! The paper's hypothesis: iterations grow roughly with log |C|, so
//! total time stays tractable as sketches grow. This bench sweeps a
//! single sketch family whose |C| grows geometrically (wider constant
//! holes and longer reorder blocks) and measures end-to-end synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psketch_core::{Options, Synthesis};
use std::hint::black_box;

/// A sketch whose space grows as `width` grows: find `target` among
/// `2^width` constants under concurrent increments.
fn const_sweep_source(width: u32) -> String {
    format!(
        "int g;
         harness void main() {{
             fork (i; 2) {{ int old = AtomicReadAndIncr(g); }}
             assert g == ??({width}) - 1;
         }}"
    )
}

/// A reorder whose space grows as k!: exactly one order of k dependent
/// updates reaches the target value.
fn reorder_sweep_source(k: usize) -> String {
    // g starts 0; statement j (for j in 0..k) is g = g * 2 + j.
    // Only ascending order yields the canonical value.
    let mut expected = 0i64;
    for j in 0..k {
        expected = expected * 2 + j as i64;
    }
    let stmts: Vec<String> = (0..k).map(|j| format!("g = g * 2 + {j};")).collect();
    format!(
        "int g;
         harness void main() {{
             reorder {{ {} }}
             assert g == {expected};
         }}",
        stmts.join(" ")
    )
}

fn bench_hole_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/hole_width");
    for width in [2u32, 4, 6, 8] {
        let src = const_sweep_source(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &src, |b, src| {
            b.iter(|| {
                let out = Synthesis::new(black_box(src), Options::default())
                    .unwrap()
                    .run();
                assert!(out.resolved());
                black_box(out.stats.iterations)
            })
        });
    }
    group.finish();
}

fn bench_reorder_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/reorder_k");
    for k in [3usize, 4, 5, 6] {
        let src = reorder_sweep_source(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &src, |b, src| {
            b.iter(|| {
                let out = Synthesis::new(black_box(src), Options::default())
                    .unwrap()
                    .run();
                assert!(out.resolved());
                black_box(out.stats.iterations)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hole_width_sweep, bench_reorder_sweep
}
criterion_main!(benches);
