//! Figure 10: synthesis scaling with candidate-space size.
//!
//! The paper's hypothesis: iterations grow roughly with log |C|, so
//! total time stays tractable as sketches grow. This bench sweeps a
//! single sketch family whose |C| grows geometrically (wider constant
//! holes and longer reorder blocks) and measures end-to-end synthesis.

use psketch_bench::Harness;
use psketch_core::{Options, Synthesis};
use std::hint::black_box;

/// A sketch whose space grows as `width` grows: find `target` among
/// `2^width` constants under concurrent increments.
fn const_sweep_source(width: u32) -> String {
    format!(
        "int g;
         harness void main() {{
             fork (i; 2) {{ int old = AtomicReadAndIncr(g); }}
             assert g == ??({width}) - 1;
         }}"
    )
}

/// A reorder whose space grows as k!: exactly one order of k dependent
/// updates reaches the target value.
fn reorder_sweep_source(k: usize) -> String {
    // g starts 0; statement j (for j in 0..k) is g = g * 2 + j.
    // Only ascending order yields the canonical value.
    let mut expected = 0i64;
    for j in 0..k {
        expected = expected * 2 + j as i64;
    }
    let stmts: Vec<String> = (0..k).map(|j| format!("g = g * 2 + {j};")).collect();
    format!(
        "int g;
         harness void main() {{
             reorder {{ {} }}
             assert g == {expected};
         }}",
        stmts.join(" ")
    )
}

fn main() {
    let h = Harness::with_samples(10);
    for width in [2u32, 4, 6, 8] {
        let src = const_sweep_source(width);
        h.bench(&format!("fig10/hole_width/{width}"), || {
            let out = Synthesis::new(black_box(&src), Options::default())
                .unwrap()
                .run();
            assert!(out.resolved());
            black_box(out.stats.iterations);
        });
    }
    for k in [3usize, 4, 5, 6] {
        let src = reorder_sweep_source(k);
        h.bench(&format!("fig10/reorder_k/{k}"), || {
            let out = Synthesis::new(black_box(&src), Options::default())
                .unwrap()
                .run();
            assert!(out.resolved());
            black_box(out.stats.iterations);
        });
    }
}
