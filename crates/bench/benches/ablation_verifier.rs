//! Ablation: verification strategies and the local-step reduction.
//!
//! * `exhaustive` vs `hybrid(k)`: the hybrid verifier refutes most
//!   candidates with a handful of random schedules and pays for the
//!   exhaustive search only to confirm survivors — same answers,
//!   less state-space work per iteration (dinphilo N=5 explores ~195k
//!   states exhaustively).
//! * `por_on` vs `por_off`: how much the sound absorb-local-steps
//!   reduction shrinks the explicit search.

use criterion::{criterion_group, criterion_main, Criterion};
use psketch_core::{Config, Options, Synthesis, VerifierKind};
use psketch_exec::check;
use psketch_ir::{desugar::desugar_program, lower::lower_program};
use psketch_suite::dinphilo::{dinphilo_source, PhiloVariant};
use std::hint::black_box;

fn philo_options(verifier: VerifierKind) -> Options {
    Options {
        config: Config {
            hole_width: 3,
            unroll: 4,
            pool: 2,
            ..Config::default()
        },
        verifier,
        ..Options::default()
    }
}

fn bench_verifier_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/verifier");
    group.sample_size(10);
    let src = dinphilo_source(PhiloVariant::Sketch, 4, 3);
    for (name, kind) in [
        ("exhaustive", VerifierKind::Exhaustive),
        ("hybrid16", VerifierKind::Hybrid { samples: 16 }),
        ("hybrid64", VerifierKind::Hybrid { samples: 64 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Synthesis::new(black_box(&src), philo_options(kind))
                    .unwrap()
                    .run();
                assert!(out.resolved());
                black_box((out.stats.iterations, out.stats.sampled_refutations))
            })
        });
    }
    group.finish();
}

fn bench_local_step_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/por");
    group.sample_size(10);
    let src = "
        int g;
        harness void main() {
            fork (i; 2) {
                int a = 1; int b = 2; int d = a + b;
                int t = g;
                g = t + d;
                int e = d * 2; int f = e - 1;
                t = g;
                g = t + f;
            }
            assert g >= 8;
        }";
    for (name, reduce) in [("por_on", true), ("por_off", false)] {
        let cfg = Config {
            reduce_local_steps: reduce,
            ..Config::default()
        };
        let p = psketch_lang::check_program(src).unwrap();
        let (sk, holes) = desugar_program(&p, &cfg).unwrap();
        let l = lower_program(&sk, holes, &cfg).unwrap();
        let a = l.holes.identity_assignment();
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = check(black_box(&l), &a);
                assert!(out.is_ok());
                black_box(out.stats.states)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_verifier_strategies, bench_local_step_reduction
}
criterion_main!(benches);
