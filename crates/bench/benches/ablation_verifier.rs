//! Ablation: verification strategies and the local-step reduction.
//!
//! * `exhaustive` vs `hybrid(k)`: the hybrid verifier refutes most
//!   candidates with a handful of random schedules and pays for the
//!   exhaustive search only to confirm survivors — same answers,
//!   less state-space work per iteration (dinphilo N=5 explores ~195k
//!   states exhaustively).
//! * `por_on` vs `por_off`: how much the sound absorb-local-steps
//!   reduction shrinks the explicit search.

use psketch_bench::Harness;
use psketch_core::{Config, Options, Synthesis, VerifierKind};
use psketch_exec::check;
use psketch_ir::{desugar::desugar_program, lower::lower_program};
use psketch_suite::dinphilo::{dinphilo_source, PhiloVariant};
use std::hint::black_box;

fn philo_options(verifier: VerifierKind) -> Options {
    Options {
        config: Config {
            hole_width: 3,
            unroll: 4,
            pool: 2,
            ..Config::default()
        },
        verifier,
        ..Options::default()
    }
}

fn main() {
    let h = Harness::with_samples(10);
    let src = dinphilo_source(PhiloVariant::Sketch, 4, 3);
    for (name, kind) in [
        ("exhaustive", VerifierKind::Exhaustive),
        ("hybrid16", VerifierKind::Hybrid { samples: 16 }),
        ("hybrid64", VerifierKind::Hybrid { samples: 64 }),
    ] {
        h.bench(&format!("ablation/verifier/{name}"), || {
            let out = Synthesis::new(black_box(&src), philo_options(kind))
                .unwrap()
                .run();
            assert!(out.resolved());
            black_box((out.stats.iterations, out.stats.sampled_refutations));
        });
    }

    let src = "
        int g;
        harness void main() {
            fork (i; 2) {
                int a = 1; int b = 2; int d = a + b;
                int t = g;
                g = t + d;
                int e = d * 2; int f = e - 1;
                t = g;
                g = t + f;
            }
            assert g >= 8;
        }";
    for (name, reduce) in [("por_on", true), ("por_off", false)] {
        let cfg = Config {
            reduce_local_steps: reduce,
            ..Config::default()
        };
        let p = psketch_lang::check_program(src).unwrap();
        let (sk, holes) = desugar_program(&p, &cfg).unwrap();
        let l = lower_program(&sk, holes, &cfg).unwrap();
        let a = l.holes.identity_assignment();
        h.bench(&format!("ablation/por/{name}"), || {
            let out = check(black_box(&l), &a);
            assert!(out.is_ok());
            black_box(out.stats.states);
        });
    }
}
