//! Sequential CEGIS (paper §3/§5): `implements` equivalence synthesis
//! where observations are counterexample *inputs* found by SAT.
//!
//! A reduced version of the paper's shufps matrix-transpose contest
//! problem: synthesize the shuffle selectors of a 2×2 transpose.

use psketch_bench::Harness;
use psketch_core::{Options, Synthesis};
use std::hint::black_box;

/// 2×2 transpose via two 2-element shuffles with hole selectors.
fn mini_transpose() -> &'static str {
    r#"
int[4] trans(int[4] M) {
    int[4] T;
    T[0] = M[0];
    T[1] = M[2];
    T[2] = M[1];
    T[3] = M[3];
    return T;
}

int[2] shuf(int[4] x1, int[4] x2, int b0, int b1) {
    int[2] s;
    s[0] = x1[b0];
    s[1] = x2[b1];
    return s;
}

int[4] trans_sse(int[4] M) implements trans {
    int[4] T;
    T[0::2] = shuf(M, M, ??(2), ??(2));
    T[2::2] = shuf(M, M, ??(2), ??(2));
    return T;
}
"#
}

/// Scalar equivalence: a linear function with two unknowns.
fn linear_equiv() -> &'static str {
    r#"
int spec(int x, int y) { return x + x + x + y + y + 5; }
int impl(int x, int y) implements spec { return x * ??(2) + y * ??(2) + ??(3); }
"#
}

fn main() {
    let h = Harness::with_samples(10);
    h.bench("sequential/mini_transpose", || {
        let out = Synthesis::new(black_box(mini_transpose()), Options::default())
            .unwrap()
            .run();
        assert!(out.resolved(), "mini transpose must resolve");
        black_box(out.stats.iterations);
    });
    h.bench("sequential/linear_equiv", || {
        let out = Synthesis::new(black_box(linear_equiv()), Options::default())
            .unwrap()
            .run();
        assert!(out.resolved());
        let a = &out.resolution.unwrap().assignment;
        assert_eq!((a.value(0), a.value(1), a.value(2)), (3, 2, 5));
        black_box(out.stats.iterations);
    });
}
