//! Component microbenchmarks: the individual engines behind the
//! paper's `Ssolve`/`Smodel`/`Vsolve`/`Vmodel` columns.
#![allow(clippy::needless_range_loop)]

use psketch_bench::Harness;
use psketch_core::Synthesis;
use psketch_exec::check;
use psketch_ir::{desugar::desugar_program, lower::lower_program, Config};
use psketch_sat::{Lit, SolveResult, Solver};
use psketch_suite::queue::{queue_source, DequeueVariant, EnqueueVariant};
use psketch_suite::workload::Workload;
use psketch_symbolic::Synthesizer;
use std::hint::black_box;

fn main() {
    let h = Harness::with_samples(10);

    // `Vmodel`: front end + lowering of a queue benchmark.
    let w = Workload::parse("ed(ed|ed)").unwrap();
    let src = queue_source(EnqueueVariant::Full, DequeueVariant::Given, &w);
    let cfg = Config {
        unroll: 5,
        pool: 5,
        ..Config::default()
    };
    h.bench("components/vmodel_lowering", || {
        let p = psketch_lang::check_program(black_box(&src)).unwrap();
        let (sk, holes) = desugar_program(&p, &cfg).unwrap();
        black_box(lower_program(&sk, holes, &cfg).unwrap().total_steps());
    });

    // `Vsolve`: model checking one candidate of queueE2 over all
    // interleavings.
    let p = psketch_lang::check_program(&src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let a = l.holes.identity_assignment();
    h.bench("components/vsolve_checker", || {
        black_box(check(&l, &a).stats.states);
    });

    // `Smodel`: building the boolean encoding of one observation.
    let cex = check(&l, &a)
        .counterexample()
        .expect("identity candidate fails queueE2")
        .clone();
    h.bench("components/smodel_encoding", || {
        let mut synth = Synthesizer::new(&l);
        synth.add_trace(black_box(&cex));
        black_box(synth.stats.nodes);
    });

    // `Ssolve`: raw CDCL throughput on a pigeonhole family.
    h.bench("components/ssolve_php7", || {
        let n = 7;
        let m = 6;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        black_box(s.stats().conflicts);
    });

    // Whole-loop reference point: queueE1 end to end.
    let w = Workload::parse("ed(e|d)").unwrap();
    let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::Given, &w);
    let opts = psketch_core::Options {
        config: Config {
            unroll: 4,
            pool: 4,
            ..Config::default()
        },
        ..psketch_core::Options::default()
    };
    h.bench("components/cegis_queueE1", || {
        let out = Synthesis::new(black_box(&src), opts.clone()).unwrap().run();
        assert!(out.resolved());
        black_box(out.stats.iterations);
    });
}
