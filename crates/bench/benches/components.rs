//! Component microbenchmarks: the individual engines behind the
//! paper's `Ssolve`/`Smodel`/`Vsolve`/`Vmodel` columns.
#![allow(clippy::needless_range_loop)]

use criterion::{criterion_group, criterion_main, Criterion};
use psketch_core::Synthesis;
use psketch_exec::check;
use psketch_ir::{desugar::desugar_program, lower::lower_program, Config};
use psketch_sat::{Lit, SolveResult, Solver};
use psketch_suite::queue::{queue_source, DequeueVariant, EnqueueVariant};
use psketch_suite::workload::Workload;
use psketch_symbolic::Synthesizer;
use std::hint::black_box;

/// `Vmodel`: front end + lowering of a queue benchmark.
fn bench_lowering(c: &mut Criterion) {
    let w = Workload::parse("ed(ed|ed)").unwrap();
    let src = queue_source(EnqueueVariant::Full, DequeueVariant::Given, &w);
    let cfg = Config {
        unroll: 5,
        pool: 5,
        ..Config::default()
    };
    c.bench_function("components/vmodel_lowering", |b| {
        b.iter(|| {
            let p = psketch_lang::check_program(black_box(&src)).unwrap();
            let (sk, holes) = desugar_program(&p, &cfg).unwrap();
            black_box(lower_program(&sk, holes, &cfg).unwrap().total_steps())
        })
    });
}

/// `Vsolve`: model checking one candidate of queueE2 over all
/// interleavings.
fn bench_model_checking(c: &mut Criterion) {
    let w = Workload::parse("ed(ed|ed)").unwrap();
    let src = queue_source(EnqueueVariant::Full, DequeueVariant::Given, &w);
    let cfg = Config {
        unroll: 5,
        pool: 5,
        ..Config::default()
    };
    let p = psketch_lang::check_program(&src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let a = l.holes.identity_assignment();
    c.bench_function("components/vsolve_checker", |b| {
        b.iter(|| black_box(check(&l, &a).stats.states))
    });
}

/// `Smodel`: building the boolean encoding of one observation.
fn bench_trace_encoding(c: &mut Criterion) {
    let w = Workload::parse("ed(ed|ed)").unwrap();
    let src = queue_source(EnqueueVariant::Full, DequeueVariant::Given, &w);
    let cfg = Config {
        unroll: 5,
        pool: 5,
        ..Config::default()
    };
    let p = psketch_lang::check_program(&src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let a = l.holes.identity_assignment();
    let cex = check(&l, &a)
        .counterexample()
        .expect("identity candidate fails queueE2")
        .clone();
    c.bench_function("components/smodel_encoding", |b| {
        b.iter(|| {
            let mut synth = Synthesizer::new(&l);
            synth.add_trace(black_box(&cex));
            black_box(synth.stats.nodes)
        })
    });
}

/// `Ssolve`: raw CDCL throughput on a pigeonhole family.
fn bench_sat(c: &mut Criterion) {
    c.bench_function("components/ssolve_php7", |b| {
        b.iter(|| {
            let n = 7;
            let m = 6;
            let mut s = Solver::new();
            let p: Vec<Vec<Lit>> = (0..n)
                .map(|_| (0..m).map(|_| Lit::pos(s.new_var())).collect())
                .collect();
            for row in &p {
                s.add_clause(row.iter().copied());
            }
            for j in 0..m {
                for i1 in 0..n {
                    for i2 in (i1 + 1)..n {
                        s.add_clause([!p[i1][j], !p[i2][j]]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.stats().conflicts)
        })
    });
}

/// Whole-loop reference point: queueE1 end to end.
fn bench_cegis_queue_e1(c: &mut Criterion) {
    let w = Workload::parse("ed(e|d)").unwrap();
    let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::Given, &w);
    let opts = psketch_core::Options {
        config: Config {
            unroll: 4,
            pool: 4,
            ..Config::default()
        },
        ..psketch_core::Options::default()
    };
    c.bench_function("components/cegis_queueE1", |b| {
        b.iter(|| {
            let out = Synthesis::new(black_box(&src), opts.clone()).unwrap().run();
            assert!(out.resolved());
            black_box(out.stats.iterations)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lowering, bench_model_checking, bench_trace_encoding, bench_sat, bench_cegis_queue_e1
}
criterion_main!(benches);
