//! Ablation (paper §7.2): quadratic vs. exponential (insertion)
//! `reorder` encodings.
//!
//! The paper reports that the exponential encoding, despite its
//! asymptotics, is often faster for the small blocks that occur in
//! practice. This bench runs the same reorder synthesis problem under
//! both encodings.

use psketch_bench::Harness;
use psketch_core::{Config, Options, ReorderEncoding, Synthesis};
use std::hint::black_box;

fn reorder_source(k: usize) -> String {
    let mut expected = 0i64;
    for j in 0..k {
        expected = expected * 2 + j as i64;
    }
    let stmts: Vec<String> = (0..k).map(|j| format!("g = g * 2 + {j};")).collect();
    format!(
        "int g;
         harness void main() {{
             reorder {{ {} }}
             assert g == {expected};
         }}",
        stmts.join(" ")
    )
}

fn concurrent_reorder_source() -> String {
    // The queueE1-style problem: order a swap and a link correctly
    // under two threads.
    "struct E { Object v; E next; int taken; }
     E head; E tail;
     void enq(Object x) {
         E tmp = null;
         E n = new E(x, null, 0);
         reorder {
             tmp = AtomicSwap(tail, n);
             tmp.next = n;
         }
     }
     harness void main() {
         head = new E(0, null, 1);
         tail = head;
         fork (i; 2) { enq(i + 1); }
         assert tail != null;
         assert tail.next == null;
         assert head.next != null;
         assert head.next.next != null;
     }"
    .to_string()
}

fn options(enc: ReorderEncoding) -> Options {
    Options {
        config: Config {
            reorder: enc,
            unroll: 4,
            pool: 4,
            ..Config::default()
        },
        ..Options::default()
    }
}

fn main() {
    let h = Harness::with_samples(10);
    for k in [4usize, 5, 6] {
        let src = reorder_source(k);
        for (name, enc) in [
            ("quadratic", ReorderEncoding::Quadratic),
            ("exponential", ReorderEncoding::Exponential),
        ] {
            h.bench(&format!("ablation/reorder_sequential/{name}/{k}"), || {
                let out = Synthesis::new(black_box(&src), options(enc)).unwrap().run();
                assert!(out.resolved());
                black_box(out.stats.iterations);
            });
        }
    }
    let src = concurrent_reorder_source();
    for (name, enc) in [
        ("quadratic", ReorderEncoding::Quadratic),
        ("exponential", ReorderEncoding::Exponential),
    ] {
        h.bench(&format!("ablation/reorder_concurrent/{name}"), || {
            let out = Synthesis::new(black_box(&src), options(enc)).unwrap().run();
            assert!(out.resolved());
            black_box(out.stats.iterations);
        });
    }
}
