//! Table 1: front-end throughput — parse, typecheck, desugar and
//! candidate-space computation for each of the ten benchmark sketches.

use psketch_bench::Harness;
use psketch_core::Synthesis;
use psketch_suite::table1_entries;
use std::hint::black_box;

fn main() {
    let h = Harness::with_samples(10);
    for entry in table1_entries() {
        h.bench(&format!("table1/{}", entry.benchmark), || {
            let s = Synthesis::new(black_box(&entry.run.source), entry.run.options.clone())
                .expect("lowers");
            black_box(s.candidate_space());
        });
    }
}
