//! Table 1: front-end throughput — parse, typecheck, desugar and
//! candidate-space computation for each of the ten benchmark sketches.

use criterion::{criterion_group, criterion_main, Criterion};
use psketch_core::Synthesis;
use psketch_suite::table1_entries;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for entry in table1_entries() {
        group.bench_function(entry.benchmark, |b| {
            b.iter(|| {
                let s = Synthesis::new(
                    black_box(&entry.run.source),
                    entry.run.options.clone(),
                )
                .expect("lowers");
                black_box(s.candidate_space())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
