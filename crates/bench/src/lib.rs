#![warn(missing_docs)]
//! Benchmark support for the PSKETCH reproduction.
//!
//! The benches under `benches/` are plain `harness = false` binaries
//! built on [`Harness`], a dependency-free timing loop (the container
//! has no crates.io access, so Criterion is unavailable). Each
//! measurement reports min/median/mean over a fixed sample count.
//!
//! [`JsonWriter`] emits the machine-readable `BENCH_cegis.json`
//! consumed by the perf-trajectory tooling (see the `bench_cegis`
//! binary).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A named collection of timed measurements.
pub struct Harness {
    /// Samples per measurement.
    pub samples: usize,
    filter: Option<String>,
}

/// One measurement's summary statistics.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::new()
    }
}

impl Harness {
    /// Creates a harness; `--bench` style argv filters (first
    /// non-flag argument) restrict which measurements run.
    pub fn new() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && a != "bench");
        Harness {
            samples: 10,
            filter,
        }
    }

    /// With a specific sample count.
    pub fn with_samples(samples: usize) -> Harness {
        Harness {
            samples,
            ..Harness::new()
        }
    }

    /// With a specific sample count and no argv filter — for binaries
    /// whose positional arguments are not measurement names.
    pub fn unfiltered(samples: usize) -> Harness {
        Harness {
            samples,
            filter: None,
        }
    }

    /// Times `f` `self.samples` times and prints a summary line.
    /// Returns `None` when the name does not match the CLI filter.
    pub fn bench(&self, name: &str, mut f: impl FnMut()) -> Option<Measurement> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        // One warm-up run outside the measurement.
        f();
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            f();
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let m = Measurement {
            min: times[0],
            median: times[times.len() / 2],
            mean: times.iter().sum::<Duration>() / times.len() as u32,
        };
        println!(
            "{name:<48} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  (n={})",
            m.min, m.median, m.mean, self.samples
        );
        Some(m)
    }
}

/// Hand-rolled JSON emitter (objects of scalar fields only — exactly
/// what the bench records need; no serde available offline).
#[derive(Default)]
pub struct JsonWriter {
    rows: Vec<String>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Appends one record; `fields` are (key, value).
    pub fn record(&mut self, fields: &[(&str, JsonValue)]) {
        let mut row = String::from("    {");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                row.push_str(", ");
            }
            let _ = write!(row, "\"{k}\": {v}");
        }
        row.push('}');
        self.rows.push(row);
    }

    /// Renders the whole document: `{"meta": {...}, "runs": [...]}`.
    pub fn render(&self, meta: &[(&str, JsonValue)]) -> String {
        let mut out = String::from("{\n  \"meta\": {");
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": {v}");
        }
        out.push_str("},\n  \"runs\": [\n");
        out.push_str(&self.rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A JSON scalar.
pub enum JsonValue {
    /// A string (escaped on output).
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (rendered with 6 decimals).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Str(s) => {
                write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
            }
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::Num(v) => write!(f, "{v:.6}"),
            JsonValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures() {
        let h = Harness::with_samples(3);
        let m = h
            .bench("noop", || {
                std::hint::black_box(1 + 1);
            })
            .unwrap();
        assert!(m.min <= m.median);
    }

    #[test]
    fn json_renders_valid_shape() {
        let mut w = JsonWriter::new();
        w.record(&[
            ("sketch", JsonValue::Str("queueE1".into())),
            ("threads", JsonValue::Int(4)),
            ("secs", JsonValue::Num(0.25)),
            ("resolved", JsonValue::Bool(true)),
        ]);
        let doc = w.render(&[("schema", JsonValue::Int(1))]);
        assert!(doc.contains("\"sketch\": \"queueE1\""));
        assert!(doc.contains("\"schema\": 1"));
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
    }
}
