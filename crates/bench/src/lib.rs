//! Criterion benches live under `benches/`; see the crate manifest.
