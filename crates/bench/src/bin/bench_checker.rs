//! Engine-level checker benchmark → `BENCH_checker.json`.
//!
//! Measures raw model-checking throughput (states explored per second)
//! and peak RSS on Table 1 workloads, comparing five engine
//! configurations on the *same* resolved candidate: the compile-once
//! candidate layer driving the undo-log engine with both reductions
//! (`compiled-por`, the default configuration — the candidate is
//! sealed into a hole-free micro-op program once per workload, as
//! CEGIS seals it once per iteration and reuses it across prescreen,
//! sampler and exhaustive check; the one-time sealing cost is
//! reported in the `compile_us` column), the interpreted
//! zero-clone undo-log engine with ample-set partial-order reduction
//! and thread-symmetry canonicalization (`undo-por`), the same
//! interpreter with only symmetry (`undo-sym`), with full
//! interleaving expansion and identity canonicalization (`undo`), and
//! the reference clone-per-transition engine (`clone`).
//! The `undo` and `clone` rows sweep the identical state space end to
//! end; the `undo-por` and `undo-sym` rows visit provably sufficient
//! subsets of it, and the `states` / `states_pruned` / `sym_collapses`
//! columns quantify each reduction. The Table 1 workers all read
//! their fork index (senses, fork slots), so on those rows the sound
//! asymmetry fallback keeps `undo-sym` identical to `undo`; the
//! `symcounter` workload is genuinely symmetric and shows the orbit
//! collapse.
//!
//! Each workload is first synthesised to completion; the winning
//! candidate's exhaustive verification — the hot path of every CEGIS
//! run, since a correct candidate's search cannot stop early — is then
//! timed for each engine. A `seal-ablation` row per workload times
//! sealing the winner from scratch against resealing it incrementally
//! from a one-hole-perturbed artifact (the CEGIS-iteration pattern)
//! and asserts the two artifacts are bit-identical.
//!
//! Usage: `cargo run --release -p psketch-bench --bin bench_checker
//! [--smoke] [output.json]` (default `BENCH_checker.json` in the
//! current directory). `--smoke` takes one sample per cell instead of
//! five: CI uses it to validate that the harness runs and the report
//! parses, not to take publishable numbers.

use psketch_bench::{Harness, JsonValue, JsonWriter};
use psketch_core::{mem, Options, Synthesis};
use psketch_exec::{
    check_compiled, check_with_limits, reference::check_ref_with_limit, CheckOutcome,
    CompiledProgram, SearchLimits, Verdict,
};
use psketch_ir::{Assignment, Config};
use psketch_suite::barrier::{barrier_source, BarrierVariant};
use psketch_suite::dinphilo::{dinphilo_source, PhiloVariant};
use psketch_suite::figure9_runs;
use std::cell::RefCell;
use std::hint::black_box;

/// The Figure 9 `(benchmark, test)` rows measured. Both resolve, so
/// the timed search is a full Pass-verdict state-space sweep.
const SKETCHES: &[(&str, &str)] = &[("barrier2", "N=2,B=3"), ("fineset2", "ar(ar|ar)")];

const MAX_STATES: usize = 50_000_000;

/// A checker workload: a Table 1 sketch plus its lowering bounds.
struct Load {
    name: String,
    source: String,
    options: Options,
}

/// The measured workloads: two Figure 9 rows, a five-philosopher
/// dining table with a two-step think/eat loop (a large sweep whose
/// hole-resolved fork slots the sharpened footprints localize), and a
/// wider barrier (four workers) where per-transition work is small
/// and the state is large — the regime that exposes per-transition
/// copying cost.
fn workloads() -> Vec<Load> {
    let runs = figure9_runs();
    let mut out: Vec<Load> = SKETCHES
        .iter()
        .map(|(benchmark, test)| {
            let run = runs
                .iter()
                .find(|r| r.benchmark == *benchmark && r.test == *test)
                .expect("sketch is a Figure 9 row");
            Load {
                name: format!("{benchmark}/{test}"),
                source: run.source.clone(),
                options: run.options.clone(),
            }
        })
        .collect();
    out.push(Load {
        name: "dinphilo/N=5,T=2".into(),
        source: dinphilo_source(PhiloVariant::Sketch, 5, 2),
        options: Options {
            config: Config {
                hole_width: 3,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        },
    });
    out.push(Load {
        name: "barrier1/N=4,B=2".into(),
        source: barrier_source(BarrierVariant::Restricted, 4, 2),
        options: Options {
            config: Config {
                hole_width: 2,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        },
    });
    // Interchangeable workers with no fork-index dependence: the
    // thread-symmetry reduction's best case (up to 4! states per
    // orbit collapse to one).
    out.push(Load {
        name: "symcounter/N=4".into(),
        source: "int g;
                 harness void main() {
                     fork (i; 4) { int t = g; g = t + 1; }
                     assert g >= 1;
                 }"
        .into(),
        options: Options::default(),
    });
    out
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_checker.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let h = Harness::unfiltered(if smoke { 1 } else { 5 });
    let mut w = JsonWriter::new();

    for load in workloads() {
        let synthesis =
            Synthesis::new(&load.source, load.options.clone()).expect("workload lowers");
        let outcome = synthesis.run();
        let candidate = outcome
            .resolution
            .expect("Table 1 workload resolves")
            .assignment;
        let lowered = synthesis.lowered();

        // Sealed once per candidate, exactly as a CEGIS iteration
        // seals it once and reuses the artifact across prescreen,
        // sampler and exhaustive check. The one-time sealing cost is
        // surfaced in the compile_us column, not folded into the
        // timed sweep.
        let cp = CompiledProgram::compile(lowered, &candidate);

        type Engine<'a> = (&'static str, Box<dyn Fn() -> CheckOutcome + 'a>);
        let engines: [Engine; 5] = [
            (
                "compiled-por",
                Box::new(|| check_compiled(black_box(&cp), &SearchLimits::states(MAX_STATES))),
            ),
            (
                "undo-por",
                Box::new(|| {
                    let limits = SearchLimits {
                        compile: false,
                        ..SearchLimits::states(MAX_STATES)
                    };
                    check_with_limits(black_box(lowered), black_box(&candidate), &limits)
                }),
            ),
            (
                "undo-sym",
                Box::new(|| {
                    let limits = SearchLimits {
                        por: false,
                        compile: false,
                        ..SearchLimits::states(MAX_STATES)
                    };
                    check_with_limits(black_box(lowered), black_box(&candidate), &limits)
                }),
            ),
            (
                "undo",
                Box::new(|| {
                    let limits = SearchLimits {
                        por: false,
                        symmetry: false,
                        compile: false,
                        ..SearchLimits::states(MAX_STATES)
                    };
                    check_with_limits(black_box(lowered), black_box(&candidate), &limits)
                }),
            ),
            (
                "clone",
                Box::new(|| {
                    check_ref_with_limit(black_box(lowered), black_box(&candidate), MAX_STATES)
                }),
            ),
        ];
        for (engine, check) in engines {
            let id = format!("checker/{}/{engine}", load.name);
            let last = RefCell::new(None);
            // Peak RSS is process-wide and monotonic, so it can't
            // attribute memory to a single cell. Instead sample the
            // current RSS around the run and report the growth this
            // engine caused (clamped at zero: the allocator may also
            // return pages between runs).
            let rss_before = mem::current_rss_bytes();
            let m = h
                .bench(&id, || {
                    let out = check();
                    assert!(
                        matches!(out.verdict, Verdict::Pass),
                        "{id}: the resolved candidate must pass"
                    );
                    *last.borrow_mut() = Some(out);
                })
                .expect("no filter in use");
            let rss_delta = mem::current_rss_bytes()
                .zip(rss_before)
                .map(|(after, before)| after.saturating_sub(before));
            let out = last.into_inner().expect("ran at least once");
            let states_per_sec = out.stats.states as f64 / m.median.as_secs_f64();
            w.record(&[
                ("sketch", JsonValue::Str(load.name.clone())),
                ("engine", JsonValue::Str(engine.into())),
                ("secs_median", JsonValue::Num(m.median.as_secs_f64())),
                ("secs_min", JsonValue::Num(m.min.as_secs_f64())),
                ("states", JsonValue::Int(out.stats.states as i64)),
                ("transitions", JsonValue::Int(out.stats.transitions as i64)),
                (
                    "terminal_states",
                    JsonValue::Int(out.stats.terminal_states as i64),
                ),
                ("states_per_sec", JsonValue::Num(states_per_sec)),
                (
                    "journal_writes",
                    JsonValue::Int(out.stats.journal_writes as i64),
                ),
                (
                    "state_clones",
                    JsonValue::Int(out.stats.state_clones as i64),
                ),
                (
                    "por_ample_hits",
                    JsonValue::Int(out.stats.por_ample_hits as i64),
                ),
                (
                    "por_fallbacks",
                    JsonValue::Int(out.stats.por_fallbacks as i64),
                ),
                (
                    "states_pruned",
                    JsonValue::Int(out.stats.states_pruned as i64),
                ),
                (
                    "sym_collapses",
                    JsonValue::Int(out.stats.sym_collapses as i64),
                ),
                ("compile_us", JsonValue::Int(out.stats.compile_us as i64)),
                (
                    "sharpened_masks",
                    JsonValue::Int(out.stats.sharpened_masks as i64),
                ),
                ("reseal_us", JsonValue::Int(out.stats.reseal_us as i64)),
                (
                    "threads_reused",
                    JsonValue::Int(out.stats.threads_reused as i64),
                ),
                (
                    "rss_delta_bytes",
                    match rss_delta {
                        Some(b) => JsonValue::Int(b as i64),
                        None => JsonValue::Str("n/a".into()),
                    },
                ),
            ]);
        }

        // Reseal ablation: the CEGIS-iteration pattern. Perturb the
        // winner's first hole (flip the low bit — every hole is at
        // least one bit wide, so the value stays in domain), seal the
        // perturbed candidate fresh, then reseal it back to the
        // winner. Threads that never read the flipped hole keep their
        // micro-op arrays and footprints verbatim; the fresh vs
        // reseal medians quantify the incremental-sealing win. The
        // hole-free symcounter row degenerates to the identity reseal
        // (every thread reused).
        let mut vals = candidate.values().to_vec();
        if let Some(v) = vals.first_mut() {
            *v ^= 1;
        }
        let perturbed = Assignment::from_values(vals);
        let fresh_m = h
            .bench(&format!("checker/{}/seal-fresh", load.name), || {
                black_box(CompiledProgram::compile(
                    black_box(lowered),
                    black_box(&candidate),
                ));
            })
            .expect("no filter in use");
        let prev = CompiledProgram::compile(lowered, &perturbed);
        let resealed = RefCell::new(None);
        let reseal_m = h
            .bench(&format!("checker/{}/seal-reseal", load.name), || {
                *resealed.borrow_mut() = Some(CompiledProgram::reseal(
                    black_box(&prev),
                    lowered,
                    black_box(&candidate),
                ));
            })
            .expect("no filter in use");
        let rcp = resealed.into_inner().expect("ran at least once");
        assert!(
            rcp.artifact_eq(&cp),
            "{}: resealed artifact must be identical to the fresh seal",
            load.name
        );
        w.record(&[
            ("sketch", JsonValue::Str(load.name.clone())),
            ("engine", JsonValue::Str("seal-ablation".into())),
            (
                "fresh_seal_us",
                JsonValue::Int(fresh_m.median.as_micros() as i64),
            ),
            (
                "reseal_us",
                JsonValue::Int(reseal_m.median.as_micros() as i64),
            ),
            (
                "threads_reused",
                JsonValue::Int(rcp.threads_reused() as i64),
            ),
            (
                "threads_total",
                JsonValue::Int(lowered.workers.len() as i64 + 2),
            ),
        ]);
    }

    let doc = w.render(&[
        ("schema", JsonValue::Int(4)),
        ("suite", JsonValue::Str("checker_engine_throughput".into())),
        ("cores", JsonValue::Int(cores as i64)),
        ("samples", JsonValue::Int(h.samples as i64)),
        ("smoke", JsonValue::Bool(smoke)),
        (
            "note",
            JsonValue::Str(
                "undo and clone sweep the identical state space of the \
                 resolved candidate; undo-por (ample-set reduction + \
                 thread-symmetry canonicalization) and undo-sym \
                 (symmetry only) explore sound subsets. compiled-por \
                 is the default configuration: the candidate is sealed \
                 once into a hole-free micro-op program — as CEGIS \
                 seals once per iteration and reuses the artifact \
                 across prescreen, sampler and exhaustive check — \
                 with candidate-sharpened POR masks (sharpened_masks) \
                 and then swept with both reductions; the one-time \
                 sealing cost is the compile_us column, outside the \
                 timed sweep. When sharpened_masks is 0 the \
                 compiled-por state count matches undo-por exactly. \
                 Table 1 workers read their fork index, so the sound \
                 deferred-sort fallback keeps undo-sym state counts \
                 equal to undo there (nonzero sym_collapses on the \
                 barrier rows are noncanonical revisits, not orbit \
                 merges); the symcounter row is genuinely symmetric \
                 and shows the real orbit collapse. \
                 rss_delta_bytes is the resident-set growth sampled \
                 around each cell's runs (0 when the allocator reused \
                 earlier capacity), replacing the old process-wide \
                 monotonic peak that later rows inherited. The \
                 seal-ablation row per sketch is the incremental-\
                 sealing ablation: fresh_seal_us seals the winner \
                 from scratch, reseal_us reseals it from an artifact \
                 whose first hole was flipped, threads_reused counts \
                 the threads (of threads_total: prologue + workers + \
                 epilogue) carried over verbatim; the resealed \
                 artifact is asserted bit-identical to the fresh seal"
                    .into(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc).expect("write BENCH_checker.json");
    println!("wrote {out_path}");
}
