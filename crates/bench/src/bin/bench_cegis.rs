//! Machine-readable CEGIS scaling benchmark → `BENCH_cegis.json`.
//!
//! Runs a small/medium/large trio of Figure 9 sketches through the
//! full CEGIS loop at `threads` ∈ {1, 2, 4, 8} (plus a portfolio-width
//! series at `portfolio` ∈ {1, 3}) and records per-run wall-clock,
//! explored states and iteration counts. Thread scaling is bounded by
//! the host's available cores — the `cores` field in the meta block
//! records how many were present when the numbers were taken.
//!
//! Usage: `cargo run --release -p psketch-bench --bin bench_cegis
//! [output.json]` (default `BENCH_cegis.json` in the current
//! directory).

use psketch_bench::{Harness, JsonValue, JsonWriter};
use psketch_core::{Options, Synthesis};
use psketch_suite::figure9_runs;
use std::cell::RefCell;
use std::hint::black_box;

/// The `(benchmark, test)` rows measured, spanning ~20ms to ~1s of
/// sequential CEGIS time.
const SKETCHES: &[(&str, &str)] = &[
    ("queueE1", "ed(ed|ed)"),
    ("barrier2", "N=2,B=3"),
    ("fineset2", "ar(ar|ar)"),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cegis.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let h = Harness::with_samples(3);
    let mut w = JsonWriter::new();

    let runs = figure9_runs();
    for (benchmark, test) in SKETCHES {
        let run = runs
            .iter()
            .find(|r| r.benchmark == *benchmark && r.test == *test)
            .expect("sketch is a Figure 9 row");
        for (threads, portfolio) in [(1, 1), (2, 1), (4, 1), (8, 1), (1, 3), (4, 3)] {
            let options = Options {
                threads,
                portfolio,
                ..run.options.clone()
            };
            let id = format!("cegis/{benchmark}/{test}/t{threads}p{portfolio}");
            let last = RefCell::new(None);
            let m = h
                .bench(&id, || {
                    let s =
                        Synthesis::new(black_box(&run.source), options.clone()).expect("lowers");
                    let out = s.run();
                    assert_eq!(out.resolved(), run.expected_resolvable, "{id}");
                    *last.borrow_mut() = Some(out);
                })
                .expect("no filter in use");
            let out = last.into_inner().expect("ran at least once");
            w.record(&[
                ("sketch", JsonValue::Str(format!("{benchmark}/{test}"))),
                ("threads", JsonValue::Int(threads as i64)),
                ("portfolio", JsonValue::Int(portfolio as i64)),
                ("secs_median", JsonValue::Num(m.median.as_secs_f64())),
                ("secs_min", JsonValue::Num(m.min.as_secs_f64())),
                ("states", JsonValue::Int(out.stats.states as i64)),
                ("transitions", JsonValue::Int(out.stats.transitions as i64)),
                (
                    "terminal_states",
                    JsonValue::Int(out.stats.terminal_states as i64),
                ),
                ("iterations", JsonValue::Int(out.stats.iterations as i64)),
                (
                    "portfolio_width",
                    JsonValue::Int(out.stats.portfolio_width as i64),
                ),
                (
                    "sat_decisions",
                    JsonValue::Int(out.stats.sat_decisions as i64),
                ),
                (
                    "sat_conflicts",
                    JsonValue::Int(out.stats.sat_conflicts as i64),
                ),
                (
                    "s_solve_secs",
                    JsonValue::Num(out.stats.s_solve.as_secs_f64()),
                ),
                (
                    "v_solve_secs",
                    JsonValue::Num(out.stats.v_solve.as_secs_f64()),
                ),
                (
                    "peak_memory_bytes",
                    match out.stats.peak_memory {
                        Some(b) => JsonValue::Int(b as i64),
                        None => JsonValue::Str("n/a".into()),
                    },
                ),
                ("resolved", JsonValue::Bool(out.resolved())),
            ]);
        }
    }

    let doc = w.render(&[
        ("schema", JsonValue::Int(1)),
        ("suite", JsonValue::Str("cegis_thread_scaling".into())),
        ("cores", JsonValue::Int(cores as i64)),
        ("samples", JsonValue::Int(h.samples as i64)),
        (
            "note",
            JsonValue::Str(
                "speedup from threads > cores is not expected; \
                 compare against the cores field"
                    .into(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc).expect("write BENCH_cegis.json");
    println!("wrote {out_path}");
}
