//! Machine-readable CEGIS scaling benchmark → `BENCH_cegis.json`.
//!
//! Runs a small/medium/large trio of Figure 9 sketches through the
//! full CEGIS loop at `threads` ∈ {1, 2, 4, 8} (plus a portfolio-width
//! series at `portfolio` ∈ {1, 3}) and records per-run wall-clock,
//! explored states and iteration counts. Thread scaling is bounded by
//! the host's available cores — the `cores` field in the meta block
//! records how many were present when the numbers were taken.
//!
//! Every cell also carries a `prescreen` column: the sequential and
//! portfolio baselines are measured twice, once with the schedule-bank
//! prescreen (the default) and once with `prescreen: false`, so the
//! report doubles as the prescreen ablation. `prescreen_hits` /
//! `checker_calls_avoided` count the full checker invocations the bank
//! turned into O(trace) replays. The `compile_us` / `reseal_us` /
//! `threads_reused` columns surface the incremental-sealing layer:
//! after the first iteration every candidate reseals the previous
//! artifact, re-emitting only the threads whose hole values changed.
//!
//! Usage: `cargo run --release -p psketch-bench --bin bench_cegis
//! [--smoke] [output.json]` (default `BENCH_cegis.json` in the current
//! directory). `--smoke` takes one sample per cell instead of three:
//! CI uses it to validate that the harness runs and the report parses,
//! not to take publishable numbers.

use psketch_bench::{Harness, JsonValue, JsonWriter};
use psketch_core::{Options, Synthesis};
use psketch_suite::figure9_runs;
use std::cell::RefCell;
use std::hint::black_box;

/// The `(benchmark, test)` rows measured, spanning ~20ms to ~1s of
/// sequential CEGIS time.
const SKETCHES: &[(&str, &str)] = &[
    ("queueE1", "ed(ed|ed)"),
    ("barrier2", "N=2,B=3"),
    ("fineset2", "ar(ar|ar)"),
];

/// `(threads, portfolio, prescreen)` cells. The prescreen-off rows
/// mirror the two baselines so on/off pairs share a configuration.
const CONFIGS: &[(usize, usize, bool)] = &[
    (1, 1, true),
    (1, 1, false),
    (2, 1, true),
    (4, 1, true),
    (8, 1, true),
    (1, 3, true),
    (1, 3, false),
    (4, 3, true),
];

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_cegis.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let h = Harness::unfiltered(if smoke { 1 } else { 3 });
    let mut w = JsonWriter::new();

    let runs = figure9_runs();
    for (benchmark, test) in SKETCHES {
        let run = runs
            .iter()
            .find(|r| r.benchmark == *benchmark && r.test == *test)
            .expect("sketch is a Figure 9 row");
        for &(threads, portfolio, prescreen) in CONFIGS {
            let options = Options {
                threads,
                portfolio,
                prescreen,
                ..run.options.clone()
            };
            let tag = if prescreen { "" } else { "-nopre" };
            let id = format!("cegis/{benchmark}/{test}/t{threads}p{portfolio}{tag}");
            let last = RefCell::new(None);
            let m = h
                .bench(&id, || {
                    let s =
                        Synthesis::new(black_box(&run.source), options.clone()).expect("lowers");
                    let out = s.run();
                    assert_eq!(out.resolved(), run.expected_resolvable, "{id}");
                    *last.borrow_mut() = Some(out);
                })
                .expect("no filter in use");
            let out = last.into_inner().expect("ran at least once");
            w.record(&[
                ("sketch", JsonValue::Str(format!("{benchmark}/{test}"))),
                ("threads", JsonValue::Int(threads as i64)),
                ("portfolio", JsonValue::Int(portfolio as i64)),
                ("prescreen", JsonValue::Bool(prescreen)),
                ("secs_median", JsonValue::Num(m.median.as_secs_f64())),
                ("secs_min", JsonValue::Num(m.min.as_secs_f64())),
                ("states", JsonValue::Int(out.stats.states as i64)),
                ("transitions", JsonValue::Int(out.stats.transitions as i64)),
                (
                    "terminal_states",
                    JsonValue::Int(out.stats.terminal_states as i64),
                ),
                ("iterations", JsonValue::Int(out.stats.iterations as i64)),
                (
                    "portfolio_width",
                    JsonValue::Int(out.stats.portfolio_width as i64),
                ),
                (
                    "prescreen_hits",
                    JsonValue::Int(out.stats.prescreen_hits as i64),
                ),
                (
                    "prescreen_replays",
                    JsonValue::Int(out.stats.prescreen_replays as i64),
                ),
                (
                    "checker_calls_avoided",
                    JsonValue::Int(out.stats.checker_calls_avoided as i64),
                ),
                ("bank_size", JsonValue::Int(out.stats.bank_size as i64)),
                ("compile_us", JsonValue::Int(out.stats.compile_us as i64)),
                ("reseal_us", JsonValue::Int(out.stats.reseal_us as i64)),
                (
                    "threads_reused",
                    JsonValue::Int(out.stats.threads_reused as i64),
                ),
                (
                    "sat_decisions",
                    JsonValue::Int(out.stats.sat_decisions as i64),
                ),
                (
                    "sat_conflicts",
                    JsonValue::Int(out.stats.sat_conflicts as i64),
                ),
                (
                    "s_solve_secs",
                    JsonValue::Num(out.stats.s_solve.as_secs_f64()),
                ),
                (
                    "v_solve_secs",
                    JsonValue::Num(out.stats.v_solve.as_secs_f64()),
                ),
                (
                    "peak_memory_bytes",
                    match out.stats.peak_memory {
                        Some(b) => JsonValue::Int(b as i64),
                        None => JsonValue::Str("n/a".into()),
                    },
                ),
                ("resolved", JsonValue::Bool(out.resolved())),
            ]);
        }
    }

    let doc = w.render(&[
        ("schema", JsonValue::Int(4)),
        ("suite", JsonValue::Str("cegis_thread_scaling".into())),
        ("cores", JsonValue::Int(cores as i64)),
        ("samples", JsonValue::Int(h.samples as i64)),
        ("smoke", JsonValue::Bool(smoke)),
        (
            "note",
            JsonValue::Str(
                "speedup from threads > cores is not expected; compare \
                 against the cores field. prescreen=false rows are the \
                 schedule-bank ablation: compare them against the \
                 prescreen=true row with the same threads/portfolio. \
                 compile_us is the cumulative candidate-sealing time; \
                 reseal_us (included in compile_us) and threads_reused \
                 count the incremental reseals that reused the previous \
                 iteration's artifact instead of sealing from scratch"
                    .into(),
            ),
        ),
    ]);
    std::fs::write(&out_path, doc).expect("write BENCH_cegis.json");
    println!("wrote {out_path}");
}
