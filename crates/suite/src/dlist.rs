//! The doubly-linked list sketch — one of the benchmarks the paper
//! mentions but omits ("we have sketched other data structures that we
//! omit here, including a doubly-linked list", §8.2).
//!
//! Reconstruction: writers insert nodes after the head under a lock
//! while an *unlocked* reader repeatedly walks the list forward. The
//! four pointer updates of the insertion (`n.prev`, `n.next`,
//! `p.next`, `q.prev`) are a `reorder` soup with generator operands;
//! only publication orders that keep the list forward-consistent for
//! the concurrent reader survive (the new node's `next` must be set
//! before the node becomes reachable). The epilogue checks full
//! doubly-linked consistency.

use std::fmt::Write as _;

/// Which doubly-linked-list program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DlistVariant {
    /// Pointer-update order and operands sketched.
    Sketch,
    /// The safe publication order, hole-free.
    Solved,
}

fn insert_source(v: DlistVariant) -> &'static str {
    match v {
        DlistVariant::Sketch => {
            r#"
void insertAfter(DNode p, int key) {
    lockN(p);
    DNode q = p.next;
    DNode n = new DNode(key, -1, null, null);
    reorder {
        n.prev = {| p | q | n |};
        n.next = {| p | q | n |};
        p.next = {| (n|q)(.next|.prev)? |};
        q.prev = {| (n|p)(.next|.prev)? |};
    }
    unlockN(p);
}
"#
        }
        DlistVariant::Solved => {
            r#"
void insertAfter(DNode p, int key) {
    lockN(p);
    DNode q = p.next;
    DNode n = new DNode(key, -1, null, null);
    n.prev = p;
    n.next = q;
    p.next = n;
    q.prev = n;
    unlockN(p);
}
"#
        }
    }
}

/// Generates the benchmark: `writers` threads insert one key each
/// after the head while one extra thread reads.
pub fn dlist_source(v: DlistVariant, writers: usize) -> String {
    assert!((1..=3).contains(&writers));
    let nthreads = writers + 1;
    let max_nodes = writers + 2;
    let mut src = format!(
        r#"
struct DNode {{ int key; int owner; DNode next; DNode prev; }}
DNode head;
DNode tailS;

void lockN(DNode n) {{ atomic (n.owner == -1) {{ n.owner = pid(); }} }}
void unlockN(DNode n) {{ assert n.owner == pid(); n.owner = -1; }}

void readForward() {{
    DNode c = head;
    int steps = 0;
    while (c.next != null) {{
        c = c.next;
        steps = steps + 1;
        assert steps <= {max_nodes};
    }}
    assert c == tailS;
}}

void checkDoublyLinked(int expected) {{
    DNode c = head;
    int n = 1;
    while (c.next != null) {{
        assert c.next.prev == c;
        assert c.owner == -1;
        c = c.next;
        n = n + 1;
        assert n <= {max_nodes};
    }}
    assert c == tailS;
    assert n == expected;
    DNode b = tailS;
    int m = 1;
    while (b.prev != null) {{
        assert b.prev.next == b;
        b = b.prev;
        m = m + 1;
        assert m <= {max_nodes};
    }}
    assert b == head;
    assert m == expected;
}}
"#
    );
    src.push_str(insert_source(v));
    let mut h = String::new();
    h.push_str("harness void main() {\n");
    h.push_str("    tailS = new DNode(99, -1, null, null);\n");
    h.push_str("    head = new DNode(0, -1, tailS, null);\n");
    h.push_str("    tailS.prev = head;\n");
    let _ = writeln!(h, "    fork (i; {nthreads}) {{");
    for t in 0..writers {
        let _ = writeln!(
            h,
            "        if (i == {t}) {{ insertAfter(head, {}); }}",
            t + 1
        );
    }
    let _ = writeln!(
        h,
        "        if (i == {writers}) {{ readForward(); readForward(); }}"
    );
    h.push_str("    }\n");
    let _ = writeln!(h, "    checkDoublyLinked({});", writers + 2);
    h.push_str("}\n");
    src.push_str(&h);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Config, Options, Synthesis};

    fn options() -> Options {
        Options {
            config: Config {
                unroll: 6,
                pool: 6,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn sources_typecheck() {
        for v in [DlistVariant::Sketch, DlistVariant::Solved] {
            let src = dlist_source(v, 2);
            psketch_lang::check_program(&src).unwrap_or_else(|e| panic!("{v:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn solved_insertion_verifies() {
        let src = dlist_source(DlistVariant::Solved, 2);
        let s = Synthesis::new(&src, options()).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "safe publication order rejected"
        );
    }

    #[test]
    fn sketch_resolves_and_publishes_safely() {
        let src = dlist_source(DlistVariant::Sketch, 1);
        let s = Synthesis::new(&src, options()).unwrap();
        let out = s.run();
        let r = out.resolution.expect("dlist sketch resolves");
        let ins = s.resolve_function("insertAfter", &r.assignment).unwrap();
        // The synthesized order must set n.next = q before publishing
        // p.next = n, or the unlocked reader would fall off the list.
        let set_next = ins.find("n.next = q").expect("links forward");
        let publish = ins.find("p.next = n").expect("publishes");
        assert!(set_next < publish, "unsafe publication:\n{ins}");
    }
}
