//! The lock-free queue benchmarks (paper §2 and §8.2.1):
//! `queueE1`, `queueE2`, `queueDE1`, `queueDE2`.
//!
//! The queue is the exam problem of §2: `prevHead`/`tail` pointers,
//! nodes marked `taken` on dequeue, an `AtomicSwap`-based lock-free
//! `Enqueue`. Sketches:
//!
//! * `queueE1` — restricted `Enqueue` (4 candidates, Table 1);
//! * `queueE2` — the full Figure 1 `Enqueue` sketch;
//! * `queueDE1`/`queueDE2` — the same plus the single-while-loop
//!   "soup" `Dequeue` sketch of §8.2.1.
//!
//! Correctness (paper §8.2.1): sequential consistency (per-enqueuer
//! FIFO) and structural integrity, checked in the epilogue; memory
//! safety, deadlock freedom and bounded termination are implicit.

use crate::workload::{OpKind, Workload};
use std::fmt::Write as _;

/// Which `Enqueue` to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueVariant {
    /// `queueE1`: restricted sketch, |C| = 4.
    Restricted,
    /// `queueE2`: the full Figure 1 sketch.
    Full,
    /// The known-correct implementation (Figure 2), hole-free.
    Solved,
}

/// Which `Dequeue` to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DequeueVariant {
    /// The fixed concurrent dequeue (resolved Figure 4 shape).
    Given,
    /// The Figure 3 sketch (4 candidates): sketched prevHead
    /// advancement.
    SketchAdvance,
    /// The §8.2.1 single-while-loop "soup" sketch.
    SketchSoup,
}

/// Shared queue declarations and helper functions.
fn queue_prelude(max_nodes: usize) -> String {
    format!(
        r#"
struct QueueEntry {{ Object stored; QueueEntry next; int taken; }}

QueueEntry listHead;
QueueEntry prevHead;
QueueEntry tail;

int posInList(Object v) {{
    QueueEntry c = listHead.next;
    int p = 0;
    while (c != null) {{
        if (c.stored == v) {{ return p; }}
        p = p + 1;
        c = c.next;
    }}
    return 0 - 1;
}}

int takenOf(Object v) {{
    QueueEntry c = listHead.next;
    while (c != null) {{
        if (c.stored == v) {{ return c.taken; }}
        c = c.next;
    }}
    return 0 - 1;
}}

int takenCount() {{
    QueueEntry c = listHead.next;
    int k = 0;
    while (c != null) {{
        if (c.taken == 1) {{ k = k + 1; }}
        c = c.next;
    }}
    return k;
}}

void checkStructure(int totalEnq) {{
    assert tail != null;
    assert prevHead != null;
    assert prevHead.taken == 1;
    assert tail.next == null;
    QueueEntry c = listHead;
    int n = 0;
    bit sawUntaken = false;
    bit sawTail = false;
    bit sawPrevHead = false;
    while (c != null) {{
        n = n + 1;
        assert n <= {max_nodes};
        if (c.taken == 0) {{ sawUntaken = true; }}
        if (c.taken == 1) {{ assert !sawUntaken; }}
        if (c == tail) {{ sawTail = true; }}
        if (c == prevHead) {{ sawPrevHead = true; }}
        c = c.next;
    }}
    assert sawTail;
    assert sawPrevHead;
    assert n == totalEnq + 1;
}}
"#
    )
}

fn enqueue_source(v: EnqueueVariant) -> &'static str {
    match v {
        EnqueueVariant::Restricted => {
            r#"
void Enqueue(Object newobject) {
    QueueEntry tmp = null;
    QueueEntry newEntry = new QueueEntry(newobject, null, 0);
    reorder {
        tmp = AtomicSwap(tail, newEntry);
        tmp.next = {| newEntry | tmp |};
    }
}
"#
        }
        EnqueueVariant::Full => {
            // Figure 1, with the fixup condition flattened into a
            // single generator (nested generators are not supported).
            r#"
#define aLocation {| tail(.next)? | (tmp|newEntry).next |}
#define aValue {| (tail|tmp|newEntry)(.next)? | null |}
#define anExpr {| tmp == (tail|newEntry)(.next)? | tmp != (tail|newEntry)(.next)? | tmp == null | tmp != null | false |}

void Enqueue(Object newobject) {
    QueueEntry tmp = null;
    QueueEntry newEntry = new QueueEntry(newobject, null, 0);
    reorder {
        aLocation = aValue;
        tmp = AtomicSwap(aLocation, aValue);
        if (anExpr) { aLocation = aValue; }
    }
}
"#
        }
        EnqueueVariant::Solved => {
            r#"
void Enqueue(Object newobject) {
    QueueEntry tmp = null;
    QueueEntry newEntry = new QueueEntry(newobject, null, 0);
    tmp = AtomicSwap(tail, newEntry);
    tmp.next = newEntry;
}
"#
        }
    }
}

fn dequeue_source(v: DequeueVariant) -> &'static str {
    match v {
        DequeueVariant::Given => {
            r#"
Object Dequeue() {
    QueueEntry nextEntry = prevHead.next;
    while (nextEntry != null && AtomicSwap(nextEntry.taken, 1) == 1) {
        nextEntry = nextEntry.next;
    }
    if (nextEntry == null) { return 0 - 1; }
    QueueEntry p = prevHead;
    while (p.next != null && p.next.taken == 1) {
        prevHead = p;
        p = p.next;
    }
    return nextEntry.stored;
}
"#
        }
        DequeueVariant::SketchAdvance => {
            // Figure 3: sketched start and body of the advancement
            // loop (4 candidates).
            r#"
Object Dequeue() {
    QueueEntry nextEntry = prevHead.next;
    while (nextEntry != null && AtomicSwap(nextEntry.taken, 1) == 1) {
        nextEntry = nextEntry.next;
    }
    if (nextEntry == null) { return 0 - 1; }
    QueueEntry p = {| prevHead | nextEntry |};
    while (p.next != null && {| p(.next)?.taken |} == 1) {
        prevHead = p;
        p = p.next;
    }
    return nextEntry.stored;
}
"#
        }
        DequeueVariant::SketchSoup => {
            // §8.2.1: "simply places in a reorder block all the
            // statements that one could reasonably expect to be
            // necessary".
            r#"
Object Dequeue() {
    QueueEntry tmp = null;
    bit taken = true;
    while (taken) {
        reorder {
            tmp = {| prevHead(.next)?(.next)? |};
            if (tmp == null) { return 0 - 1; }
            prevHead = {| (tmp|prevHead)(.next)? |};
            if (tmp.taken == 0) { taken = AtomicSwap(tmp.taken, 1); }
        }
    }
    return tmp.stored;
}
"#
        }
    }
}

/// Emits the op statements for one context.
fn emit_ops(out: &mut String, ops: &[OpKind], ctx: usize, indent: &str) {
    let mut enq = 0;
    let mut deq = 0;
    for op in ops {
        match op {
            OpKind::Insert => {
                let v = Workload::insert_value(ctx, enq);
                let _ = writeln!(out, "{indent}Enqueue({v});");
                enq += 1;
            }
            OpKind::Delete => {
                let _ = writeln!(out, "{indent}gd_{ctx}_{deq} = Dequeue();");
                deq += 1;
            }
        }
    }
}

/// Generates the complete benchmark source for an enqueue/dequeue
/// variant pair on a workload.
pub fn queue_source(enq: EnqueueVariant, deq: DequeueVariant, w: &Workload) -> String {
    let total_enq = w.total_inserts();
    let n = w.num_threads();
    let max_nodes = total_enq + 1;
    let mut src = queue_prelude(max_nodes);
    src.push_str(enqueue_source(enq));
    src.push_str(dequeue_source(deq));

    let mut h = String::new();
    h.push_str("harness void main() {\n");
    // Dequeue-result slots, declared at harness scope => shared
    // globals each thread writes only its own.
    let contexts: Vec<(usize, &[OpKind])> = std::iter::once((0usize, &w.pre[..]))
        .chain(w.threads.iter().enumerate().map(|(i, t)| (i + 1, &t[..])))
        .chain(std::iter::once((n + 1, &w.post[..])))
        .collect();
    let mut gd_vars: Vec<(usize, usize)> = Vec::new();
    for &(ctx, ops) in &contexts {
        for (j, _) in ops.iter().filter(|o| **o == OpKind::Delete).enumerate() {
            let _ = writeln!(h, "    int gd_{ctx}_{j} = 0 - 1;");
            gd_vars.push((ctx, j));
        }
    }
    h.push_str("    prevHead = new QueueEntry(0, null, 1);\n");
    h.push_str("    listHead = prevHead;\n");
    h.push_str("    tail = prevHead;\n");
    emit_ops(&mut h, &w.pre, 0, "    ");
    let _ = writeln!(h, "    fork (i; {n}) {{");
    for (t, ops) in w.threads.iter().enumerate() {
        let _ = writeln!(h, "        if (i == {t}) {{");
        emit_ops(&mut h, ops, t + 1, "            ");
        h.push_str("        }\n");
    }
    h.push_str("    }\n");
    emit_ops(&mut h, &w.post, n + 1, "    ");

    // ---- epilogue checks ----
    let _ = writeln!(h, "    checkStructure({total_enq});");
    // Sequential-context dequeues have *deterministic* results
    // (this is why the paper's tests carry an `ed` prefix: it rules
    // out degenerate dequeues that always report an empty queue).
    // Prologue: simulate the FIFO exactly.
    {
        let mut fifo: std::collections::VecDeque<i64> = std::collections::VecDeque::new();
        let mut enq = 0;
        let mut deq = 0;
        for op in &w.pre {
            match op {
                OpKind::Insert => {
                    fifo.push_back(Workload::insert_value(0, enq));
                    enq += 1;
                }
                OpKind::Delete => {
                    let expect = fifo.pop_front().unwrap_or(-1);
                    let _ = writeln!(h, "    assert gd_0_{deq} == {expect};");
                    deq += 1;
                }
            }
        }
        // Epilogue dequeues: guaranteed non-empty when even the
        // maximal number of earlier dequeues cannot drain the queue;
        // and sequential dequeues return values in list (FIFO) order.
        let leftover_after_pre = fifo.len();
        let worker_inserts: usize = w
            .threads
            .iter()
            .flatten()
            .filter(|o| **o == OpKind::Insert)
            .count();
        let worker_deletes: usize = w
            .threads
            .iter()
            .flatten()
            .filter(|o| **o == OpKind::Delete)
            .count();
        let epi = n + 1;
        let mut post_enq = 0;
        let mut post_deq = 0;
        for op in &w.post {
            match op {
                OpKind::Insert => post_enq += 1,
                OpKind::Delete => {
                    let guaranteed = (leftover_after_pre + worker_inserts + post_enq) as i64
                        - (worker_deletes + post_deq) as i64;
                    if guaranteed > 0 {
                        let _ = writeln!(h, "    assert gd_{epi}_{post_deq} != 0 - 1;");
                    }
                    if post_deq > 0 {
                        let p = post_deq - 1;
                        let _ = writeln!(
                            h,
                            "    assert gd_{epi}_{p} == 0 - 1 || gd_{epi}_{post_deq} == 0 - 1 \
                             || posInList(gd_{epi}_{p}) < posInList(gd_{epi}_{post_deq});"
                        );
                    }
                    post_deq += 1;
                }
            }
        }
    }
    // Every enqueued value is in the list; per-context FIFO order.
    for &(ctx, ops) in &contexts {
        let enqs: Vec<i64> = ops
            .iter()
            .filter(|o| **o == OpKind::Insert)
            .enumerate()
            .map(|(j, _)| Workload::insert_value(ctx, j))
            .collect();
        for (j, v) in enqs.iter().enumerate() {
            let _ = writeln!(h, "    int pos_{ctx}_{j} = posInList({v});");
            let _ = writeln!(h, "    assert pos_{ctx}_{j} != 0 - 1;");
        }
        for j in 1..enqs.len() {
            let _ = writeln!(h, "    assert pos_{ctx}_{} < pos_{ctx}_{j};", j - 1);
        }
    }
    // Dequeue results: valid, distinct, and count-coherent.
    for &(ctx, j) in &gd_vars {
        let _ = writeln!(
            h,
            "    assert gd_{ctx}_{j} == 0 - 1 || takenOf(gd_{ctx}_{j}) == 1;"
        );
    }
    for (a, &(c1, j1)) in gd_vars.iter().enumerate() {
        for &(c2, j2) in gd_vars.iter().skip(a + 1) {
            let _ = writeln!(
                h,
                "    assert gd_{c1}_{j1} == 0 - 1 || gd_{c2}_{j2} == 0 - 1 || gd_{c1}_{j1} != gd_{c2}_{j2};"
            );
        }
    }
    h.push_str("    int got = 0;\n");
    for &(ctx, j) in &gd_vars {
        let _ = writeln!(h, "    if (gd_{ctx}_{j} != 0 - 1) {{ got = got + 1; }}");
    }
    h.push_str("    assert takenCount() == got;\n");
    h.push_str("}\n");
    src.push_str(&h);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Options, Synthesis};
    use psketch_ir::Config;

    fn options(w: &Workload) -> Options {
        Options {
            config: Config {
                unroll: w.total_inserts() + 2,
                pool: w.total_inserts() + 2,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn all_variant_sources_typecheck() {
        let w = Workload::parse("ed(ed|ed)").unwrap();
        for enq in [
            EnqueueVariant::Restricted,
            EnqueueVariant::Full,
            EnqueueVariant::Solved,
        ] {
            for deq in [
                DequeueVariant::Given,
                DequeueVariant::SketchAdvance,
                DequeueVariant::SketchSoup,
            ] {
                let src = queue_source(enq, deq, &w);
                psketch_lang::check_program(&src)
                    .unwrap_or_else(|e| panic!("{enq:?}/{deq:?}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn solved_queue_passes_verification() {
        // The known solution (Figures 2 + 4) must pass the checker on
        // the smallest workload — validates our correctness harness.
        let w = Workload::parse("ed(e|d)").unwrap();
        let src = queue_source(EnqueueVariant::Solved, DequeueVariant::Given, &w);
        let s = Synthesis::new(&src, options(&w)).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "known-correct queue rejected by the harness"
        );
    }

    #[test]
    fn queue_e1_resolves_to_figure2() {
        let w = Workload::parse("ed(e|d)").unwrap();
        let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::Given, &w);
        let s = Synthesis::new(&src, options(&w)).unwrap();
        assert_eq!(s.candidate_space(), 4);
        let out = s.run();
        let r = out.resolution.expect("queueE1 resolves");
        let enq = s.resolve_function("Enqueue", &r.assignment).unwrap();
        // Figure 2: swap first, then tmp.next = newEntry.
        let swap_pos = enq.find("AtomicSwap").unwrap();
        let link_pos = enq.find("tmp.next = newEntry").unwrap();
        assert!(swap_pos < link_pos, "{enq}");
    }

    #[test]
    fn wrong_enqueue_order_is_rejected() {
        let w = Workload::parse("ed(e|d)").unwrap();
        let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::Given, &w);
        let s = Synthesis::new(&src, options(&w)).unwrap();
        // Order hole reversed: link before swap. tmp is null then.
        let bad = psketch_ir::Assignment::from_values(vec![1, 0, 0]);
        assert!(
            s.verify_candidate(&bad).is_some(),
            "null-deref candidate must fail"
        );
    }
}
