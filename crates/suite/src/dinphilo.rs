//! The dining-philosophers benchmark (paper §8.2.5).
//!
//! `P` philosophers contend for `P` chopsticks (conditional atomics
//! over an owner array). The acquisition policy — which chopstick to
//! pick up first, as an expression of the philosopher's index — is
//! sketched; the release order is also left open. Correctness:
//! deadlock freedom (implicit) plus the bounded-liveness property that
//! every philosopher eats `T` times within the bounded execution.

use std::fmt::Write as _;

/// Which dining-philosophers program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhiloVariant {
    /// The sketch: acquisition policy and release order unknown.
    Sketch,
    /// The textbook solution (pick the lower-numbered chopstick
    /// first), hole-free.
    Solved,
}

fn eat_source(v: PhiloVariant, p_count: usize) -> String {
    match v {
        PhiloVariant::Sketch => format!(
            r#"
void eat(int p) {{
    int left = p;
    int right = (p + 1) % {p_count};
    int first = 0;
    int second = 0;
    if ({{| p % 2 == ?? | p == ?? | p < ?? | true |}}) {{
        first = left;
        second = right;
    }} else {{
        first = right;
        second = left;
    }}
    atomic (chop[first] == -1) {{ chop[first] = pid(); }}
    atomic (chop[second] == -1) {{ chop[second] = pid(); }}
    meals[p] = meals[p] + 1;
    reorder {{
        chop[second] = -1;
        chop[first] = -1;
    }}
}}
"#
        ),
        PhiloVariant::Solved => format!(
            r#"
void eat(int p) {{
    int left = p;
    int right = (p + 1) % {p_count};
    int first = 0;
    int second = 0;
    if (p < {p_count} - 1) {{
        first = left;
        second = right;
    }} else {{
        first = right;
        second = left;
    }}
    atomic (chop[first] == -1) {{ chop[first] = pid(); }}
    atomic (chop[second] == -1) {{ chop[second] = pid(); }}
    meals[p] = meals[p] + 1;
    chop[second] = -1;
    chop[first] = -1;
}}
"#
        ),
    }
}

/// Generates the benchmark for `p_count` philosophers eating `t` times.
pub fn dinphilo_source(v: PhiloVariant, p_count: usize, t: usize) -> String {
    assert!((2..=7).contains(&p_count), "2..=7 philosophers supported");
    let mut src = format!(
        r#"
int[{p_count}] chop;
int[{p_count}] meals;
"#
    );
    // Chopsticks start free (-1): initialize in the prologue since
    // array globals default to 0.
    src.push_str(&eat_source(v, p_count));
    let mut h = String::new();
    h.push_str("harness void main() {\n");
    for k in 0..p_count {
        let _ = writeln!(h, "    chop[{k}] = -1;");
    }
    let _ = writeln!(h, "    fork (p; {p_count}) {{");
    for _ in 0..t {
        h.push_str("        eat(p);\n");
    }
    h.push_str("    }\n");
    // Bounded liveness: everyone ate T times; all chopsticks free.
    for k in 0..p_count {
        let _ = writeln!(h, "    assert meals[{k}] == {t};");
        let _ = writeln!(h, "    assert chop[{k}] == -1;");
    }
    h.push_str("}\n");
    src.push_str(&h);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Options, Synthesis};
    use psketch_ir::Config;

    fn options(_p: usize) -> Options {
        Options {
            config: Config {
                hole_width: 3,
                unroll: 4,
                pool: 2,
                int_width: 8,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn sources_typecheck() {
        for v in [PhiloVariant::Sketch, PhiloVariant::Solved] {
            for p in [2, 3, 5] {
                let src = dinphilo_source(v, p, 2);
                psketch_lang::check_program(&src)
                    .unwrap_or_else(|e| panic!("{v:?} P={p}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn solved_philosophers_verify() {
        let src = dinphilo_source(PhiloVariant::Solved, 3, 2);
        let s = Synthesis::new(&src, options(3)).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "textbook solution rejected"
        );
    }

    #[test]
    fn naive_all_left_first_deadlocks() {
        // All grabbing their left chopstick first must deadlock.
        let src = "
            int[3] chop;
            int[3] meals;
            void eat(int p) {
                int left = p;
                int right = (p + 1) % 3;
                atomic (chop[left] == -1) { chop[left] = pid(); }
                atomic (chop[right] == -1) { chop[right] = pid(); }
                meals[p] = meals[p] + 1;
                chop[right] = -1;
                chop[left] = -1;
            }
            harness void main() {
                chop[0] = -1; chop[1] = -1; chop[2] = -1;
                fork (p; 3) { eat(p); }
            }";
        let s = Synthesis::new(src, options(3)).unwrap();
        let a = s.lowered().holes.identity_assignment();
        let cex = s.verify_candidate(&a).expect("must deadlock");
        assert_eq!(cex.failure.kind, psketch_core::FailureKind::Deadlock);
    }

    #[test]
    fn sketch_resolves_small() {
        let src = dinphilo_source(PhiloVariant::Sketch, 3, 1);
        let out = Synthesis::new(&src, options(3)).unwrap().run();
        assert!(out.resolved(), "dinphilo P=3 T=1 must resolve");
    }
}
