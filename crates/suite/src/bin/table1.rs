//! Regenerates the paper's Table 1: benchmark summary with
//! candidate-space sizes |C|.
//!
//! `table1 --dump <benchmark>` instead prints that benchmark's sketch
//! source to stdout (so scripts and CI can feed a Table-1 workload to
//! the `psketch` CLI without duplicating the source). `--no-por`
//! disables the checker's partial-order reduction in the benchmark
//! options (space sizing itself never runs the checker, so the flag
//! only matters to tooling that reuses these options).

use psketch_core::Synthesis;
use psketch_suite::table1_entries;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let por = !args.iter().any(|a| a == "--no-por");
    args.retain(|a| a != "--no-por");
    if let [flag, name] = &args[..] {
        if flag == "--dump" {
            match table1_entries()
                .iter()
                .find(|e| e.benchmark == name.as_str())
            {
                Some(entry) => {
                    println!("{}", entry.run.source);
                    return;
                }
                None => {
                    let known: Vec<&str> = table1_entries().iter().map(|e| e.benchmark).collect();
                    eprintln!("unknown benchmark '{name}'; known: {}", known.join(", "));
                    std::process::exit(2);
                }
            }
        }
    }
    println!(
        "{:<10} {:<48} {:>12} {:>10}",
        "Sketch", "Description", "|C| (ours)", "|C| paper"
    );
    println!("{}", "-".repeat(84));
    for entry in table1_entries() {
        let mut options = entry.run.options.clone();
        options.por = por;
        let s = Synthesis::new(&entry.run.source, options).expect("benchmark lowers");
        let space = s.candidate_space();
        let rendered = if space < 1000 {
            space.to_string()
        } else {
            format!("10^{:.1}", s.lowered().holes.log10_candidate_space())
        };
        println!(
            "{:<10} {:<48} {:>12} {:>10}",
            entry.benchmark, entry.description, rendered, entry.paper_space
        );
    }
}
