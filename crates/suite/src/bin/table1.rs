//! Regenerates the paper's Table 1: benchmark summary with
//! candidate-space sizes |C|.
//!
//! `table1 --dump <benchmark>` instead prints that benchmark's sketch
//! source to stdout (so scripts and CI can feed a Table-1 workload to
//! the `psketch` CLI without duplicating the source). The shared
//! checker flags — `--no-por`, `--no-symmetry`, `--no-prescreen`,
//! `--bank-cap N` — adjust the benchmark options (space sizing itself
//! never runs the checker, so they only matter to tooling that reuses
//! these options).

use psketch_core::Synthesis;
use psketch_suite::{table1_entries, CheckerArgs};

const USAGE: &str = "table1 [--dump <benchmark>] [--no-por] [--no-symmetry] \
     [--no-prescreen] [--bank-cap N]";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let checker = CheckerArgs::extract(&mut args, USAGE);
    if let [flag, name] = &args[..] {
        if flag == "--dump" {
            match table1_entries()
                .iter()
                .find(|e| e.benchmark == name.as_str())
            {
                Some(entry) => {
                    println!("{}", entry.run.source);
                    return;
                }
                None => {
                    let known: Vec<&str> = table1_entries().iter().map(|e| e.benchmark).collect();
                    eprintln!("unknown benchmark '{name}'; known: {}", known.join(", "));
                    std::process::exit(2);
                }
            }
        }
    }
    println!(
        "{:<10} {:<48} {:>12} {:>10}",
        "Sketch", "Description", "|C| (ours)", "|C| paper"
    );
    println!("{}", "-".repeat(84));
    for entry in table1_entries() {
        let mut options = entry.run.options.clone();
        checker.apply(&mut options);
        let s = Synthesis::new(&entry.run.source, options).expect("benchmark lowers");
        let space = s.candidate_space();
        let rendered = if space < 1000 {
            space.to_string()
        } else {
            format!("10^{:.1}", s.lowered().holes.log10_candidate_space())
        };
        println!(
            "{:<10} {:<48} {:>12} {:>10}",
            entry.benchmark, entry.description, rendered, entry.paper_space
        );
    }
}
