//! Regenerates the paper's Table 1: benchmark summary with
//! candidate-space sizes |C|.

use psketch_core::Synthesis;
use psketch_suite::table1_entries;

fn main() {
    println!(
        "{:<10} {:<48} {:>12} {:>10}",
        "Sketch", "Description", "|C| (ours)", "|C| paper"
    );
    println!("{}", "-".repeat(84));
    for entry in table1_entries() {
        let s =
            Synthesis::new(&entry.run.source, entry.run.options.clone()).expect("benchmark lowers");
        let space = s.candidate_space();
        let rendered = if space < 1000 {
            space.to_string()
        } else {
            format!("10^{:.1}", s.lowered().holes.log10_candidate_space())
        };
        println!(
            "{:<10} {:<48} {:>12} {:>10}",
            entry.benchmark, entry.description, rendered, entry.paper_space
        );
    }
}
