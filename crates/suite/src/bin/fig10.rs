//! Regenerates the paper's Figure 10: log10 |C| against the number of
//! CEGIS iterations, for the Figure 9 tests.
//!
//! Prints the (x, y) series plus a least-squares fit and a crude ASCII
//! scatter plot; the paper observes an approximately linear
//! correlation. `--json PATH` additionally writes the series as a JSON
//! array of `{test, log10_space, iterations}` objects; `--no-por`
//! disables the checker's partial-order reduction, `--no-symmetry`
//! its thread-symmetry canonicalization, and
//! `--no-prescreen`/`--bank-cap` control the schedule-bank prescreen.

use psketch_core::{Json, Synthesis};
use psketch_suite::{figure9_runs, CheckerArgs};

const USAGE: &str =
    "fig10 [--json PATH] [--no-por] [--no-symmetry] [--no-prescreen] [--bank-cap N]";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let checker = CheckerArgs::extract(&mut args, USAGE);
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("usage: {USAGE}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: {USAGE}");
                std::process::exit(2);
            }
        }
    }
    let mut points: Vec<(f64, f64, String)> = Vec::new();
    for run in figure9_runs() {
        let mut options = run.options.clone();
        checker.apply(&mut options);
        let Ok(s) = Synthesis::new(&run.source, options) else {
            continue;
        };
        let out = s.run();
        if !out.resolved() {
            continue; // the paper plots resolved sketches
        }
        points.push((
            out.stats.log10_space,
            out.stats.iterations as f64,
            format!("{} [{}]", run.benchmark, run.test),
        ));
    }
    if let Some(path) = &json_path {
        let series = Json::Arr(
            points
                .iter()
                .map(|(x, y, name)| {
                    Json::Obj(vec![
                        ("test".to_string(), Json::Str(name.clone())),
                        ("log10_space".to_string(), Json::Num(*x)),
                        ("iterations".to_string(), Json::Num(*y)),
                    ])
                })
                .collect(),
        );
        if let Err(e) = std::fs::write(path, series.render()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{:<28} {:>10} {:>6}", "test", "log10|C|", "itns");
    for (x, y, name) in &points {
        println!("{name:<28} {x:>10.2} {y:>6.0}");
    }
    // Least-squares fit y = a x + b.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() > 1e-9 {
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        println!("\nleast-squares fit: itns = {a:.2} * log10|C| + {b:.2}");
        // Correlation coefficient.
        let syy: f64 = points.iter().map(|p| p.1 * p.1).sum();
        let r = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        println!("correlation r = {r:.2}");
    }
    // ASCII scatter.
    let max_x = points.iter().map(|p| p.0).fold(1.0, f64::max);
    let max_y = points.iter().map(|p| p.1).fold(1.0, f64::max);
    let (w, h) = (60usize, 16usize);
    let mut grid = vec![vec![' '; w + 1]; h + 1];
    for (x, y, _) in &points {
        let cx = ((x / max_x) * w as f64).round() as usize;
        let cy = h - ((y / max_y) * h as f64).round() as usize;
        grid[cy][cx] = '*';
    }
    println!("\nitns ^ (max {max_y:.0})");
    for row in grid {
        println!("     |{}", row.iter().collect::<String>());
    }
    println!("     +{}> log10|C| (max {max_x:.1})", "-".repeat(w));
}
