//! Regenerates the paper's Figure 9: per-test performance of the
//! synthesizer on every benchmark workload.
//!
//! Prints one block per test with the same quantities the paper
//! reports (Resolvable, Itns, Total, Ssolve, Smodel, Vsolve, Vmodel,
//! memory) plus a trailing machine-readable TSV table.
//!
//! Usage: `cargo run --release -p psketch-suite --bin fig9 [filter]
//! [--report-json DIR] [--no-por] [--no-symmetry] [--no-prescreen]
//! [--bank-cap N]` where `filter` restricts to benchmarks whose name
//! contains it, `--report-json` writes one machine-readable run
//! report per row into `DIR` as `<benchmark>_<test>.json`, `--no-por`
//! disables the checker's partial-order reduction (full interleaving
//! expansion), `--no-symmetry` disables thread-symmetry
//! canonicalization, and `--no-prescreen`/`--bank-cap` control the
//! schedule-bank prescreen ablation.

use psketch_core::{render_stats, Synthesis};
use psketch_suite::{figure9_runs, CheckerArgs};

const USAGE: &str = "fig9 [filter] [--report-json DIR] [--no-por] [--no-symmetry] \
     [--no-prescreen] [--bank-cap N]";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let checker = CheckerArgs::extract(&mut args, USAGE);
    let mut filter = String::new();
    let mut report_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report-json" => match it.next() {
                Some(dir) => report_dir = Some(dir.clone()),
                None => {
                    eprintln!("--report-json needs a directory");
                    eprintln!("usage: {USAGE}");
                    std::process::exit(2);
                }
            },
            other => filter = other.to_string(),
        }
    }
    if let Some(dir) = &report_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(1);
        }
    }
    let mut tsv = vec![
        "benchmark\ttest\tresolvable\texpected\titns\tpaper_itns\ttotal_s\tpaper_total_s\tssolve_s\tsmodel_s\tvsolve_s\tvmodel_s\tlog10_C\tstates\tpruned\tmem_mib".to_string(),
    ];
    let mut mismatches = 0;
    for run in figure9_runs() {
        if !run.benchmark.contains(&filter) {
            continue;
        }
        let mut options = run.options.clone();
        checker.apply(&mut options);
        let s = match Synthesis::new(&run.source, options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{} [{}]: {e}", run.benchmark, run.test);
                continue;
            }
        };
        let (out, report) = s.run_report();
        if let Some(dir) = &report_dir {
            let path = format!("{dir}/{}_{}.json", run.benchmark, run.test);
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {path}: {e}");
            }
        }
        print!("{}", render_stats(run.benchmark, &run.test, &out));
        let agreed = out.resolved() == run.expected_resolvable;
        if !agreed {
            mismatches += 1;
            println!(
                "  ** MISMATCH: paper reports {}",
                if run.expected_resolvable { "yes" } else { "NO" }
            );
        }
        if let Some(p) = run.paper_iterations {
            println!(
                "  paper: Itns {}  Total {:.0}s (2 GHz Core 2 Duo, 2008)",
                p,
                run.paper_total_secs.unwrap_or(0.0)
            );
        }
        println!();
        let st = &out.stats;
        tsv.push(format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.2}\t{}\t{}\t{}",
            run.benchmark,
            run.test,
            if out.resolved() {
                "yes"
            } else if out.definitely_unresolvable {
                "NO"
            } else {
                "unknown"
            },
            if run.expected_resolvable { "yes" } else { "NO" },
            st.iterations,
            run.paper_iterations.unwrap_or(0),
            st.total.as_secs_f64(),
            run.paper_total_secs.unwrap_or(0.0),
            st.s_solve.as_secs_f64(),
            st.s_model.as_secs_f64(),
            st.v_solve.as_secs_f64(),
            st.v_model.as_secs_f64(),
            st.log10_space,
            st.states,
            st.states_pruned,
            st.peak_memory.map_or_else(
                || "n/a".to_string(),
                |b| format!("{:.1}", b as f64 / (1024.0 * 1024.0))
            ),
        ));
    }
    println!("==== TSV ====");
    for line in &tsv {
        println!("{line}");
    }
    println!(
        "==== outcome agreement: {}/{} rows match the paper ====",
        tsv.len() - 1 - mismatches,
        tsv.len() - 1
    );
}
