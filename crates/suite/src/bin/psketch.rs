//! A small CLI for the PSKETCH synthesizer.
//!
//! ```text
//! psketch <file.psk> [--unroll N] [--pool N] [--hole-width N]
//!         [--int-width N] [--reorder quad|exp] [--max-iters N]
//!         [--hybrid N] [--threads N] [--portfolio N] [--no-por]
//!         [--no-symmetry] [--no-prescreen] [--bank-cap N]
//!         [--timeout SECS] [--state-budget N] [--memory-budget MIB]
//!         [--report-json PATH] [--dump-ir] [--explain]
//! ```
//!
//! Reads a sketch, runs CEGIS, prints statistics and — when the sketch
//! resolves — the synthesized program. `--report-json` additionally
//! writes the machine-readable run report (schema-stable JSON, one
//! record per CEGIS iteration). The budget flags bound the run: an
//! over-budget run exits 4 ("unknown") and names the tripped budget.

use psketch_core::{render_stats, Config, Options, ReorderEncoding, Synthesis, VerifierKind};
use psketch_suite::CheckerArgs;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: psketch <file.psk> [--unroll N] [--pool N] [--hole-width N] \
         [--int-width N] [--reorder quad|exp] [--max-iters N] [--hybrid N] \
         [--threads N] [--portfolio N] [--no-por] [--no-symmetry] \
         [--no-prescreen] [--bank-cap N] [--timeout SECS] \
         [--state-budget N] [--memory-budget MIB] [--report-json PATH] \
         [--dump-ir] [--explain]"
    );
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let checker = match CheckerArgs::try_extract(&mut args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    };
    let mut file = None;
    let mut config = Config::default();
    let mut max_iterations = 200;
    let mut verifier = VerifierKind::Exhaustive;
    let mut threads = 1;
    let mut portfolio = 1;
    let mut wall_timeout = None;
    let mut state_budget = None;
    let mut memory_budget = None;
    let mut report_json: Option<String> = None;
    let mut dump_ir = false;
    let mut explain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("bad value for {what}");
                usage()
            })
        };
        match a.as_str() {
            "--unroll" => config.unroll = num("--unroll"),
            "--pool" => config.pool = num("--pool"),
            "--hole-width" => config.hole_width = num("--hole-width") as u32,
            "--int-width" => config.int_width = num("--int-width") as u32,
            "--max-iters" => max_iterations = num("--max-iters"),
            "--reorder" => {
                config.reorder = match it.next().map(String::as_str) {
                    Some("quad") => ReorderEncoding::Quadratic,
                    Some("exp") => ReorderEncoding::Exponential,
                    _ => usage(),
                }
            }
            "--hybrid" => {
                verifier = VerifierKind::Hybrid {
                    samples: num("--hybrid"),
                }
            }
            "--threads" => threads = num("--threads").max(1),
            "--portfolio" => portfolio = num("--portfolio").max(1),
            "--timeout" => wall_timeout = Some(Duration::from_secs(num("--timeout") as u64)),
            "--state-budget" => state_budget = Some(num("--state-budget")),
            "--memory-budget" => memory_budget = Some(num("--memory-budget") as u64 * 1024 * 1024),
            "--report-json" => match it.next() {
                Some(path) => report_json = Some(path.clone()),
                None => usage(),
            },
            "--dump-ir" => dump_ir = true,
            "--explain" => explain = true,
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        }
    };
    let mut opts = Options {
        config,
        max_iterations,
        verifier,
        threads,
        portfolio,
        wall_timeout,
        state_budget,
        memory_budget,
        ..Options::default()
    };
    checker.apply(&mut opts);
    let synthesis = match Synthesis::new(&source, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "candidate space |C| = {:.3e} ({} holes)",
        synthesis.candidate_space() as f64,
        synthesis.lowered().holes.num_holes()
    );
    if dump_ir {
        eprintln!("{}", psketch_exec::format_lowered(synthesis.lowered()));
    }
    let (out, report) = synthesis.run_report();
    if let Some(path) = &report_json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    eprint!("{}", render_stats(&file, synthesis_mode(&synthesis), &out));
    match out.resolution {
        Some(r) => {
            println!("{}", r.source);
        }
        None if out.definitely_unresolvable => {
            println!("NO: the sketch cannot be resolved.");
            if explain {
                // Show why a representative candidate fails.
                let a = synthesis.lowered().holes.identity_assignment();
                if let Some(cex) = synthesis.verify_candidate(&a) {
                    eprintln!(
                        "counterexample for the identity candidate:\n{}",
                        psketch_exec::format_trace(synthesis.lowered(), &cex)
                    );
                }
            }
            std::process::exit(3);
        }
        None => {
            match &out.budget_trip {
                Some(trip) => println!(
                    "unknown: {} budget tripped in {} ({}).",
                    trip.budget.label(),
                    trip.phase,
                    trip.detail
                ),
                None => println!("unknown: budget exhausted before convergence."),
            }
            std::process::exit(4);
        }
    }
}

fn synthesis_mode(s: &Synthesis) -> &'static str {
    match s.mode() {
        psketch_core::Mode::Harness => "harness",
        psketch_core::Mode::Equivalence(_) => "implements",
    }
}
