//! Small pedagogical sketches from the paper's expository sections,
//! usable as library examples and exercised by tests.

/// The §4.1 CAS example: "the programmer suspected that a CAS had to
/// be used in the synthesized code, but he did not know which location
/// had to be updated, and with what values" — all 27 sensible CAS
/// fragments for a doubly-linked push-front, encoded with three
/// generators.
///
/// The harness pushes one node in front of `head` under concurrency
/// with a reader and checks both links afterwards.
pub fn cas_push_front() -> &'static str {
    r#"
struct DNode { int key; DNode next; DNode prev; }
DNode head;
bit pushed;

void pushFront(int key) {
    DNode newNode = new DNode(key, null, null);
    DNode oldHead = head;
    newNode.next = oldHead;
    bit ok = CAS({| head(.next|.prev)? |},
                 {| newNode(.next|.prev)? |},
                 {| newNode(.next|.prev)? |});
    if (ok) {
        oldHead.prev = newNode;
        pushed = true;
    }
}

harness void main() {
    head = new DNode(0, null, null);
    fork (i; 2) {
        if (i == 0) {
            pushFront(7);
        } else {
            DNode h = head;
            int k = h.key;
            assert k == 0 || k == 7;
        }
    }
    assert pushed;
    assert head.key == 7;
    assert head.next != null;
    assert head.next.key == 0;
    assert head.next.prev == head;
    assert head.next.next == null;
    assert head.prev == null;
}
"#
}

/// Figure 7: locks implemented with conditional atomics, plus a
/// client whose critical section must be exact.
pub fn figure7_lock() -> &'static str {
    r#"
struct Lock { int owner = -1; }
Lock lk;
int balance;

void lock(Lock l) { atomic (l.owner == -1) { l.owner = pid(); } }
void unlock(Lock l) { assert l.owner == pid(); l.owner = -1; }

harness void main() {
    lk = new Lock();
    fork (i; 2) {
        lock(lk);
        int t = balance;
        balance = t + 10;
        unlock(lk);
    }
    assert balance == 20;
    assert lk.owner == -1;
}
"#
}

/// The exam problem's *sequential* queue (§2), verified as given: a
/// regression anchor for the queue benchmarks' semantics.
pub fn sequential_queue() -> &'static str {
    r#"
struct QueueEntry { Object stored; QueueEntry next; int taken; }
QueueEntry prevHead;
QueueEntry tail;

void Enqueue(Object newobject) {
    QueueEntry newEntry = new QueueEntry(newobject, null, 0);
    tail.next = newEntry;
    tail = newEntry;
}

Object Dequeue() {
    QueueEntry nextEntry = prevHead.next;
    while (nextEntry != null && nextEntry.taken == 1) {
        nextEntry = nextEntry.next;
    }
    if (nextEntry == null) { return 0 - 1; }
    nextEntry.taken = 1;
    prevHead = nextEntry;
    return nextEntry.stored;
}

harness void main() {
    prevHead = new QueueEntry(0, null, 1);
    tail = prevHead;
    Enqueue(11);
    Enqueue(12);
    int a = Dequeue();
    Enqueue(13);
    int b = Dequeue();
    int c = Dequeue();
    int d = Dequeue();
    assert a == 11 && b == 12 && c == 13;
    assert d == 0 - 1;
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Config, Options, Synthesis};

    fn options() -> Options {
        Options {
            config: Config {
                unroll: 6,
                pool: 6,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn cas_sketch_resolves_to_the_sensible_fragment() {
        let s = Synthesis::new(cas_push_front(), options()).unwrap();
        // 3 generators x 3 alternatives = 27 CAS fragments (§4.1).
        assert_eq!(s.candidate_space(), 27);
        let out = s.run();
        let r = out.resolution.expect("one fragment is correct");
        let f = s.resolve_function("pushFront", &r.assignment).unwrap();
        // The push must CAS head itself from the expected old head
        // (captured in newNode.next) to the new node.
        assert!(f.contains("CAS(head, newNode.next, newNode)"), "{f}");
    }

    #[test]
    fn figure7_lock_gives_mutual_exclusion() {
        let s = Synthesis::new(figure7_lock(), options()).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(s.verify_candidate(&a).is_none());
    }

    #[test]
    fn sequential_queue_behaves_as_specified() {
        let s = Synthesis::new(sequential_queue(), options()).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "the exam problem's sequential queue must verify"
        );
    }
}
