//! Workload descriptors in the paper's notation.
//!
//! A test named `ed(ee|dd)` performs a sequential enqueue `e` and
//! dequeue `d`, then forks one thread per `|`-separated group; text
//! after the closing parenthesis runs sequentially afterwards
//! (e.g. `(e|e|e)ddd`). Set benchmarks use `a`/`r` for add/remove.

use std::fmt;

/// One operation of a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Enqueue (queues) / add (sets).
    Insert,
    /// Dequeue (queues) / remove (sets).
    Delete,
}

/// A parsed workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Sequential prefix.
    pub pre: Vec<OpKind>,
    /// One op-sequence per forked thread.
    pub threads: Vec<Vec<OpKind>>,
    /// Sequential suffix.
    pub post: Vec<OpKind>,
    /// The original descriptor.
    pub name: String,
}

/// Error parsing a workload descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(pub String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad workload descriptor: {}", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl Workload {
    /// Parses a descriptor like `ed(ed|ed)` or `(e|e|e)ddd`.
    ///
    /// `e`/`a` mean insert; `d`/`r` mean delete.
    ///
    /// # Errors
    ///
    /// Rejects malformed descriptors (missing parentheses, unknown
    /// letters, empty thread groups).
    pub fn parse(desc: &str) -> Result<Workload, ParseWorkloadError> {
        let err = || ParseWorkloadError(desc.to_string());
        let open = desc.find('(').ok_or_else(err)?;
        let close = desc.rfind(')').ok_or_else(err)?;
        if close < open {
            return Err(err());
        }
        let ops = |s: &str| -> Result<Vec<OpKind>, ParseWorkloadError> {
            s.chars()
                .map(|c| match c {
                    'e' | 'a' => Ok(OpKind::Insert),
                    'd' | 'r' => Ok(OpKind::Delete),
                    _ => Err(err()),
                })
                .collect()
        };
        let pre = ops(&desc[..open])?;
        let post = ops(&desc[close + 1..])?;
        let threads: Result<Vec<Vec<OpKind>>, _> = desc[open + 1..close]
            .split('|')
            .map(|g| {
                let v = ops(g)?;
                if v.is_empty() {
                    Err(err())
                } else {
                    Ok(v)
                }
            })
            .collect();
        let threads = threads?;
        if threads.is_empty() {
            return Err(err());
        }
        Ok(Workload {
            pre,
            threads,
            post,
            name: desc.to_string(),
        })
    }

    /// Total number of insert operations.
    pub fn total_inserts(&self) -> usize {
        self.pre
            .iter()
            .chain(self.threads.iter().flatten())
            .chain(self.post.iter())
            .filter(|o| **o == OpKind::Insert)
            .count()
    }

    /// Total number of delete operations.
    pub fn total_deletes(&self) -> usize {
        self.pre
            .iter()
            .chain(self.threads.iter().flatten())
            .chain(self.post.iter())
            .filter(|o| **o == OpKind::Delete)
            .count()
    }

    /// Number of forked threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The value the `j`-th insert of context `ctx` uses
    /// (contexts: 0 = prologue, `1..=n` workers, `n+1` = epilogue).
    /// Values are distinct and increase with `j` within a context.
    pub fn insert_value(ctx: usize, j: usize) -> i64 {
        (10 * (ctx + 1) + j + 1) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_descriptors() {
        let w = Workload::parse("ed(ee|dd)").unwrap();
        assert_eq!(w.pre, vec![OpKind::Insert, OpKind::Delete]);
        assert_eq!(w.threads.len(), 2);
        assert_eq!(w.threads[0], vec![OpKind::Insert, OpKind::Insert]);
        assert_eq!(w.threads[1], vec![OpKind::Delete, OpKind::Delete]);
        assert!(w.post.is_empty());

        let w = Workload::parse("(e|e|e)ddd").unwrap();
        assert!(w.pre.is_empty());
        assert_eq!(w.threads.len(), 3);
        assert_eq!(w.post.len(), 3);

        let w = Workload::parse("ar(arar|arar)").unwrap();
        assert_eq!(w.pre.len(), 2);
        assert_eq!(w.threads[0].len(), 4);
    }

    #[test]
    fn counts() {
        let w = Workload::parse("ed(ed|ed)").unwrap();
        assert_eq!(w.total_inserts(), 3);
        assert_eq!(w.total_deletes(), 3);
        assert_eq!(w.num_threads(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Workload::parse("ed").is_err());
        assert!(Workload::parse("e(x)").is_err());
        assert!(Workload::parse("e()").is_err());
        assert!(Workload::parse("e(a||b)").is_err());
        assert!(Workload::parse(")e(").is_err());
    }

    #[test]
    fn values_distinct_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for ctx in 0..5 {
            let mut last = 0;
            for j in 0..4 {
                let v = Workload::insert_value(ctx, j);
                assert!(v > last);
                last = v;
                assert!(seen.insert(v), "duplicate value {v}");
            }
        }
    }
}
