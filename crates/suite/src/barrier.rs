//! The sense-reversing barrier benchmarks (paper §8.2.2):
//! `barrier1` (restricted) and `barrier2` (full).
//!
//! The barrier keeps a global `sense`, per-thread `senses`, and a
//! count of threads yet to arrive. The `next()` method is sketched as
//! a soup of operations under sketched conditions; the client has `N`
//! threads pass `B` barrier points, each asserting that its left
//! neighbour reached the previous point (`reached[t][b]`, flattened).

use std::fmt::Write as _;

/// Which barrier sketch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BarrierVariant {
    /// `barrier1`: wake/wait structure given, conditions and the
    /// wake-block ordering sketched.
    Restricted,
    /// `barrier2`: the full soup — everything in one reorder, all
    /// conditions from the `predicate` generator.
    Full,
    /// The known-correct implementation, hole-free.
    Solved,
}

fn next_source(v: BarrierVariant) -> &'static str {
    match v {
        BarrierVariant::Restricted => {
            r#"
void next(int th) {
    bit s = !senses[th];
    senses[th] = s;
    int cv = AtomicReadAndDecr(count);
    if ({| (cv|count) == ?? |}) {
        reorder {
            count = N;
            sense = {| s | !s | sense | !sense |};
        }
    }
    if ({| (!)? ((cv|count) == ??) |}) {
        atomic (sense == {| s | !s | sense | !sense |});
    }
}
"#
        }
        BarrierVariant::Full => {
            // §8.2.2: the operations as a soup; `predicate` is the
            // paper's generator function (fresh holes per call).
            r#"
generator bit predicate(int a, int b, bit cc, bit dd) {
    return {| (!)? (a == b | b == ?? | cc | dd) |};
}

void next(int th) {
    bit s = senses[th];
    s = predicate(0, 0, s, s);
    int cv = 0;
    bit tmp = false;
    reorder {
        senses[th] = s;
        cv = AtomicReadAndDecr(count);
        tmp = predicate(count, cv, s, tmp);
        if (tmp) {
            reorder {
                count = N;
                sense = predicate(count, cv, s, s);
            }
        }
        tmp = predicate(count, cv, s, tmp);
        if (tmp) {
            bit t = predicate(0, 0, s, s);
            atomic (sense == t);
        }
    }
}
"#
        }
        BarrierVariant::Solved => {
            r#"
void next(int th) {
    bit s = !senses[th];
    senses[th] = s;
    int cv = AtomicReadAndDecr(count);
    if (cv == 1) {
        count = N;
        sense = s;
    }
    if (!(cv == 1)) {
        atomic (sense == s);
    }
}
"#
        }
    }
}

/// Generates the barrier benchmark for `n` threads passing `b` barrier
/// points.
pub fn barrier_source(v: BarrierVariant, n: usize, b: usize) -> String {
    assert!(n >= 2 && b >= 1);
    let nb = n * b;
    let mut src = format!(
        r#"
#define N {n}
bit sense;
int count = {n};
bit[{n}] senses;
bit[{nb}] reached;
"#
    );
    src.push_str(next_source(v));
    let mut h = String::new();
    h.push_str("harness void main() {\n");
    let _ = writeln!(h, "    fork (t; {n}) {{");
    h.push_str(&format!("        int left = (t + {n} - 1) % {n};\n"));
    for round in 0..b {
        let _ = writeln!(h, "        reached[t * {b} + {round}] = true;");
        let _ = writeln!(h, "        next(t);");
        let _ = writeln!(h, "        assert reached[left * {b} + {round}];");
    }
    h.push_str("    }\n");
    // After the last barrier the count must be reset for the next
    // round and every thread must have passed every point.
    let _ = writeln!(h, "    assert count == {n};");
    for t in 0..n {
        for round in 0..b {
            let _ = writeln!(h, "    assert reached[{t} * {b} + {round}];");
        }
    }
    h.push_str("}\n");
    src.push_str(&h);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Options, Synthesis};
    use psketch_ir::Config;

    fn options() -> Options {
        Options {
            config: Config {
                hole_width: 2,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn sources_typecheck() {
        for v in [
            BarrierVariant::Restricted,
            BarrierVariant::Full,
            BarrierVariant::Solved,
        ] {
            let src = barrier_source(v, 3, 2);
            psketch_lang::check_program(&src).unwrap_or_else(|e| panic!("{v:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn solved_barrier_verifies() {
        let src = barrier_source(BarrierVariant::Solved, 2, 2);
        let s = Synthesis::new(&src, options()).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "known-correct barrier rejected"
        );
    }

    #[test]
    fn solved_barrier_three_threads() {
        let src = barrier_source(BarrierVariant::Solved, 3, 2);
        let s = Synthesis::new(&src, options()).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(s.verify_candidate(&a).is_none());
    }

    #[test]
    fn barrier1_resolves_small() {
        let src = barrier_source(BarrierVariant::Restricted, 2, 1);
        let out = Synthesis::new(&src, options()).unwrap().run();
        assert!(out.resolved(), "barrier1 N=2 B=1 must resolve");
    }
}
