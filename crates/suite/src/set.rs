//! The list-based set benchmarks: `fineset1`/`fineset2`
//! (hand-over-hand locking, paper §8.2.3) and `lazyset` (the
//! one-lock `remove()` question, §8.2.4).
//!
//! Sets are sorted singly-linked lists between two sentinel nodes.
//! Node locks are modelled as an `owner` field driven by conditional
//! atomics (paper Figure 7).

use crate::workload::{OpKind, Workload};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Sentinel keys.
pub const MIN_KEY: i64 = -100;
/// Upper sentinel.
pub const MAX_KEY: i64 = 100;

/// Which set benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SetVariant {
    /// `fineset1`: restricted hand-over-hand `find` sketch.
    FineRestricted,
    /// `fineset2`: the full Figure 5 sketch.
    FineFull,
    /// Hand-over-hand with the known-correct `find` (Figure 6 shape).
    FineSolved,
    /// `lazyset`: lazy list with a singly-locked sketched `remove`.
    Lazy,
    /// The "full version of the lazy list-based set" the paper
    /// mentions but omits (§8.2): `remove` takes the standard *two*
    /// locks, with the validation condition, marking order and unlink
    /// source sketched. Unlike [`SetVariant::Lazy`], this resolves on
    /// mixed add/remove workloads.
    LazyTwoLock,
}

impl SetVariant {
    fn is_lazy(self) -> bool {
        matches!(self, SetVariant::Lazy | SetVariant::LazyTwoLock)
    }
}

fn fine_prelude() -> String {
    format!(
        r#"
struct Node {{ int key; int owner; Node next; }}
Node head;

void lockN(Node n) {{ atomic (n.owner == -1) {{ n.owner = pid(); }} }}
void unlockN(Node n) {{ assert n.owner == pid(); n.owner = -1; }}

void checkSet(int maxNodes) {{
    assert head != null;
    assert head.key == {MIN_KEY};
    Node c = head;
    int n = 1;
    while (c.next != null) {{
        assert c.owner == -1;
        assert c.key < c.next.key;
        c = c.next;
        n = n + 1;
        assert n <= maxNodes;
    }}
    assert c.key == {MAX_KEY};
    assert c.owner == -1;
}}

bit member(int k) {{
    Node c = head.next;
    while (c.key < k) {{ c = c.next; }}
    return c.key == k;
}}
"#
    )
}

fn lazy_prelude() -> String {
    format!(
        r#"
struct Node {{ int key; int owner; bit marked; Node next; }}
Node head;

void lockN(Node n) {{ atomic (n.owner == -1) {{ n.owner = pid(); }} }}
void unlockN(Node n) {{ assert n.owner == pid(); n.owner = -1; }}

void checkSet(int maxNodes) {{
    assert head != null;
    assert head.key == {MIN_KEY};
    Node c = head;
    int n = 1;
    while (c.next != null) {{
        assert c.owner == -1;
        assert !c.marked;
        assert c.key < c.next.key;
        c = c.next;
        n = n + 1;
        assert n <= maxNodes;
    }}
    assert c.key == {MAX_KEY};
    assert c.owner == -1;
}}

bit member(int k) {{
    Node c = head.next;
    while (c.key < k) {{ c = c.next; }}
    return c.key == k;
}}
"#
    )
}

fn fine_find(v: SetVariant) -> &'static str {
    match v {
        SetVariant::FineRestricted => {
            // Smaller NODE/COMP sets than Figure 5.
            r#"
#define NODE {| (tprev|cur)(.next)? |}
#define COMP {| (!)? (null == (cur|prev)(.next)?) |}

Node find(int key) {
    Node prev = head;
    lockN(prev);
    Node cur = prev.next;
    lockN(cur);
    while (cur.key < key) {
        Node tprev = prev;
        reorder {
            if (COMP) { lockN(NODE); }
            if (COMP) { unlockN(NODE); }
            prev = cur;
            cur = cur.next;
        }
    }
    return prev;
}
"#
        }
        SetVariant::FineFull => {
            // Figure 5's generators.
            r#"
#define NODE {| (tprev|cur|prev)(.next)? |}
#define COMP {| (!)? ((null|cur|prev)(.next)? == (null|cur|prev)(.next)?) |}

Node find(int key) {
    Node prev = head;
    lockN(prev);
    Node cur = prev.next;
    lockN(cur);
    while (cur.key < key) {
        Node tprev = prev;
        reorder {
            if (COMP) { lockN(NODE); }
            if (COMP) { unlockN(NODE); }
            prev = cur;
            cur = cur.next;
        }
    }
    return prev;
}
"#
        }
        SetVariant::FineSolved => {
            r#"
Node find(int key) {
    Node prev = head;
    lockN(prev);
    Node cur = prev.next;
    lockN(cur);
    while (cur.key < key) {
        Node tprev = prev;
        lockN(cur.next);
        unlockN(tprev);
        prev = cur;
        cur = cur.next;
    }
    return prev;
}
"#
        }
        SetVariant::Lazy | SetVariant::LazyTwoLock => {
            unreachable!("lazy sets have no hand-over-hand find")
        }
    }
}

fn fine_ops() -> &'static str {
    r#"
void add(int key) {
    Node prev = find(key);
    Node cur = prev.next;
    if (cur.key != key) {
        Node n = new Node(key, -1, cur);
        prev.next = n;
    }
    unlockN(cur);
    unlockN(prev);
}

void remove(int key) {
    Node prev = find(key);
    Node cur = prev.next;
    if (cur.key == key) {
        prev.next = cur.next;
    }
    unlockN(cur);
    unlockN(prev);
}
"#
}

fn lazy_ops() -> &'static str {
    // add(): the standard two-lock optimistic protocol with a bounded
    // retry loop. remove(): stripped of locks; PSKETCH chooses which
    // single node to lock, the validation condition, the unlink
    // source, and the marking order (§8.2.4).
    r#"
void add(int key) {
    bit done = false;
    while (!done) {
        Node pred = head;
        Node curr = head.next;
        while (curr.key < key) { pred = curr; curr = curr.next; }
        lockN(pred);
        lockN(curr);
        if (!pred.marked && !curr.marked && pred.next == curr) {
            if (curr.key != key) {
                Node n = new Node(key, -1, false, curr);
                pred.next = n;
            }
            done = true;
        }
        unlockN(curr);
        unlockN(pred);
    }
}

#define LOCKEE {| pred | curr |}
#define VALID {| pred.next == curr | (!)? (pred|curr).marked | curr == curr |}

void remove(int key) {
    Node pred = head;
    Node curr = head.next;
    while (curr.key < key) { pred = curr; curr = curr.next; }
    lockN(LOCKEE);
    if (VALID) {
        if (curr.key == key) {
            reorder {
                curr.marked = true;
                pred.next = {| (curr|pred)(.next)? |};
            }
        }
    }
    unlockN(LOCKEE);
}
"#
}

fn lazy_two_lock_ops() -> &'static str {
    // add() as in the single-lock variant; remove() locks *both*
    // pred and curr (the standard lazy-list protocol) but leaves the
    // validation, the marking/unlink order and the unlink source to
    // the synthesizer.
    r#"
void add(int key) {
    bit done = false;
    while (!done) {
        Node pred = head;
        Node curr = head.next;
        while (curr.key < key) { pred = curr; curr = curr.next; }
        lockN(pred);
        lockN(curr);
        if (!pred.marked && !curr.marked && pred.next == curr) {
            if (curr.key != key) {
                Node n = new Node(key, -1, false, curr);
                pred.next = n;
            }
            done = true;
        }
        unlockN(curr);
        unlockN(pred);
    }
}

#define VALID {| pred.next == curr | (!)? (pred|curr).marked | pred.next == curr && !pred.marked && !curr.marked | curr == curr |}

void remove(int key) {
    bit done = false;
    while (!done) {
        Node pred = head;
        Node curr = head.next;
        while (curr.key < key) { pred = curr; curr = curr.next; }
        lockN(pred);
        lockN(curr);
        if (VALID) {
            if (curr.key == key) {
                reorder {
                    curr.marked = true;
                    pred.next = {| (curr|pred)(.next)? |};
                }
            }
            done = true;
        }
        unlockN(curr);
        unlockN(pred);
    }
}
"#
}

/// Key used by the `j`-th insert of context `ctx` (distinct per
/// context, increasing with `j`, strictly inside the sentinels).
fn insert_key(ctx: usize, j: usize) -> i64 {
    Workload::insert_value(ctx, j)
}

/// Target key for the `j`-th delete of context `ctx`: the context's
/// own `j`-th insert when it has one, otherwise the previous
/// context's.
fn delete_key(w: &Workload, ctx: usize, j: usize) -> i64 {
    let ops_of = |c: usize| -> &[OpKind] {
        if c == 0 {
            &w.pre
        } else if c <= w.threads.len() {
            &w.threads[c - 1]
        } else {
            &w.post
        }
    };
    let inserts = |c: usize| ops_of(c).iter().filter(|o| **o == OpKind::Insert).count();
    let mut c = ctx;
    loop {
        if inserts(c) > j {
            return insert_key(c, j);
        }
        if c == 0 {
            // No insert anywhere before: target a key never added.
            return insert_key(9, j);
        }
        c -= 1;
    }
}

fn emit_ops(out: &mut String, w: &Workload, ops: &[OpKind], ctx: usize, indent: &str) {
    let mut ins = 0;
    let mut del = 0;
    for op in ops {
        match op {
            OpKind::Insert => {
                let _ = writeln!(out, "{indent}add({});", insert_key(ctx, ins));
                ins += 1;
            }
            OpKind::Delete => {
                let _ = writeln!(out, "{indent}remove({});", delete_key(w, ctx, del));
                del += 1;
            }
        }
    }
}

/// Generates a set benchmark for a workload.
pub fn set_source(v: SetVariant, w: &Workload) -> String {
    let n = w.num_threads();
    let max_nodes = 2 + w.total_inserts();
    let mut src = if v.is_lazy() {
        lazy_prelude()
    } else {
        fine_prelude()
    };
    if v == SetVariant::LazyTwoLock {
        src.push_str(lazy_two_lock_ops());
    } else if v.is_lazy() {
        src.push_str(lazy_ops());
    } else {
        src.push_str(fine_find(v));
        src.push_str(fine_ops());
    }

    let mut h = String::new();
    h.push_str("harness void main() {\n");
    // Sentinels. `new` initializes positional fields in declaration
    // order; remaining fields default.
    if v.is_lazy() {
        let _ = writeln!(h, "    Node tailS = new Node({MAX_KEY}, -1, false, null);");
        let _ = writeln!(h, "    head = new Node({MIN_KEY}, -1, false, tailS);");
    } else {
        let _ = writeln!(h, "    Node tailS = new Node({MAX_KEY}, -1, null);");
        let _ = writeln!(h, "    head = new Node({MIN_KEY}, -1, tailS);");
    }
    emit_ops(&mut h, w, &w.pre, 0, "    ");
    let _ = writeln!(h, "    fork (i; {n}) {{");
    for (t, ops) in w.threads.iter().enumerate() {
        let _ = writeln!(h, "        if (i == {t}) {{");
        emit_ops(&mut h, w, ops, t + 1, "            ");
        h.push_str("        }\n");
    }
    h.push_str("    }\n");
    emit_ops(&mut h, w, &w.post, n + 1, "    ");
    let _ = writeln!(h, "    checkSet({max_nodes});");

    // Membership is asserted only for keys whose whole history is
    // sequential (single context): concurrent add/remove races leave
    // membership interleaving-dependent.
    let mut history: HashMap<i64, Vec<(usize, OpKind)>> = HashMap::new();
    let contexts: Vec<(usize, &[OpKind])> = std::iter::once((0usize, &w.pre[..]))
        .chain(w.threads.iter().enumerate().map(|(i, t)| (i + 1, &t[..])))
        .chain(std::iter::once((n + 1, &w.post[..])))
        .collect();
    for &(ctx, ops) in &contexts {
        let mut ins = 0;
        let mut del = 0;
        for op in ops {
            let key = match op {
                OpKind::Insert => {
                    ins += 1;
                    insert_key(ctx, ins - 1)
                }
                OpKind::Delete => {
                    del += 1;
                    delete_key(w, ctx, del - 1)
                }
            };
            history.entry(key).or_default().push((ctx, *op));
        }
    }
    let mut keys: Vec<i64> = history.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let ops = &history[&key];
        let single_ctx = ops.iter().all(|(c, _)| *c == ops[0].0);
        if single_ctx {
            // Sequential history: simulate.
            let mut present = false;
            for (_, op) in ops {
                match op {
                    OpKind::Insert => present = true,
                    OpKind::Delete => present = false,
                }
            }
            if present {
                let _ = writeln!(h, "    assert member({key});");
            } else {
                let _ = writeln!(h, "    assert !member({key});");
            }
        }
    }
    h.push_str("}\n");
    src.push_str(&h);
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::{Options, Synthesis};
    use psketch_ir::Config;

    fn options(w: &Workload) -> Options {
        Options {
            config: Config {
                unroll: w.total_inserts() + 3,
                pool: w.total_inserts() + 3,
                ..Config::default()
            },
            ..Options::default()
        }
    }

    #[test]
    fn sources_typecheck() {
        let w = Workload::parse("ar(ar|ar)").unwrap();
        for v in [
            SetVariant::FineRestricted,
            SetVariant::FineFull,
            SetVariant::FineSolved,
            SetVariant::Lazy,
        ] {
            let src = set_source(v, &w);
            psketch_lang::check_program(&src).unwrap_or_else(|e| panic!("{v:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn solved_fineset_verifies() {
        let w = Workload::parse("ar(a|r)").unwrap();
        let src = set_source(SetVariant::FineSolved, &w);
        let s = Synthesis::new(&src, options(&w)).unwrap();
        let a = s.lowered().holes.identity_assignment();
        assert!(
            s.verify_candidate(&a).is_none(),
            "known-correct hand-over-hand set rejected"
        );
    }

    #[test]
    fn delete_keys_follow_rule() {
        let w = Workload::parse("ar(aa|rr)").unwrap();
        // Thread 2 (`rr`, ctx 2) has no inserts → falls back to
        // thread 1's keys.
        assert_eq!(delete_key(&w, 2, 0), insert_key(1, 0));
        assert_eq!(delete_key(&w, 2, 1), insert_key(1, 1));
        // Prologue `ar` removes its own key.
        assert_eq!(delete_key(&w, 0, 0), insert_key(0, 0));
    }
}
