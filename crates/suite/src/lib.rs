#![warn(missing_docs)]
//! The PSKETCH benchmark suite.
//!
//! Reproduces the evaluation of *Sketching Concurrent Data
//! Structures* (PLDI 2008): the ten sketches of Table 1, the
//! per-test performance measurements of Figure 9, and the
//! log|C|-vs-iterations trend of Figure 10.
//!
//! Benchmark sources are *generated* for a given workload descriptor
//! (e.g. `ed(ed|ed)`, see [`workload::Workload`]); the generators live
//! in [`queue`], [`barrier`], [`set`] and [`dinphilo`]. The
//! [`figure9_runs`] registry enumerates exactly the benchmark/test
//! pairs of the paper's Figure 9.
//!
//! Binaries:
//!
//! * `table1` — prints Table 1 (benchmarks and candidate-space sizes);
//! * `fig9` — runs every Figure 9 test and prints the measurements;
//! * `fig10` — prints (log10 |C|, iterations) pairs for Figure 10;
//! * `psketch` — a small CLI that synthesizes a sketch from a file.

pub mod barrier;
pub mod dinphilo;
pub mod dlist;
pub mod queue;
pub mod set;
pub mod tutorial;
pub mod workload;

use barrier::BarrierVariant;
use dinphilo::PhiloVariant;
use psketch_core::{Config, Options};
use queue::{DequeueVariant, EnqueueVariant};
use set::SetVariant;
use workload::Workload;

/// Checker and prescreen knobs shared by every suite binary
/// (`psketch`, `fig9`, `fig10`, `table1`): `--no-por`,
/// `--no-symmetry`, `--no-prescreen`, `--no-compile` and
/// `--bank-cap N`. Parsed once here so the ablation flags stay in
/// lockstep across the bins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckerArgs {
    /// Ample-set partial-order reduction ([`Options::por`]).
    pub por: bool,
    /// Thread-symmetry reduction ([`Options::symmetry`]).
    pub symmetry: bool,
    /// Schedule-bank prescreening ([`Options::prescreen`]).
    pub prescreen: bool,
    /// Compile-once candidate programs ([`Options::compile`]).
    pub compile: bool,
    /// Schedule-bank capacity ([`Options::bank_capacity`]).
    pub bank_capacity: usize,
}

impl Default for CheckerArgs {
    fn default() -> CheckerArgs {
        let d = Options::default();
        CheckerArgs {
            por: d.por,
            symmetry: d.symmetry,
            prescreen: d.prescreen,
            compile: d.compile,
            bank_capacity: d.bank_capacity,
        }
    }
}

impl CheckerArgs {
    /// Usage-string fragment naming the shared flags.
    pub const USAGE: &'static str =
        "[--no-por] [--no-symmetry] [--no-prescreen] [--no-compile] [--bank-cap N]";

    /// Extracts the shared flags from `args`, removing the consumed
    /// entries and leaving binary-specific arguments in place.
    /// Returns an error message on a malformed `--bank-cap`.
    pub fn try_extract(args: &mut Vec<String>) -> Result<CheckerArgs, String> {
        let mut out = CheckerArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--no-por" => {
                    out.por = false;
                    args.remove(i);
                }
                "--no-symmetry" => {
                    out.symmetry = false;
                    args.remove(i);
                }
                "--no-prescreen" => {
                    out.prescreen = false;
                    args.remove(i);
                }
                "--no-compile" => {
                    out.compile = false;
                    args.remove(i);
                }
                "--bank-cap" => {
                    let cap = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--bank-cap needs a number")?;
                    out.bank_capacity = cap;
                    args.drain(i..i + 2);
                }
                _ => i += 1,
            }
        }
        Ok(out)
    }

    /// [`CheckerArgs::try_extract`], exiting with status 2 (and the
    /// caller's usage line) on a malformed flag.
    pub fn extract(args: &mut Vec<String>, usage: &str) -> CheckerArgs {
        CheckerArgs::try_extract(args).unwrap_or_else(|e| {
            eprintln!("{e}");
            eprintln!("usage: {usage}");
            std::process::exit(2)
        })
    }

    /// Applies the flags to a benchmark's options.
    pub fn apply(&self, options: &mut Options) {
        options.por = self.por;
        options.symmetry = self.symmetry;
        options.prescreen = self.prescreen;
        options.compile = self.compile;
        options.bank_capacity = self.bank_capacity;
    }
}

/// One benchmark/test pair of the paper's Figure 9.
#[derive(Clone, Debug)]
pub struct BenchmarkRun {
    /// Benchmark name (`queueE1`, `barrier2`, …).
    pub benchmark: &'static str,
    /// Test descriptor (`ed(ed|ed)`, `N=3,B=2`, …).
    pub test: String,
    /// The generated PSKETCH source.
    pub source: String,
    /// Synthesis options tuned for the benchmark's bounds.
    pub options: Options,
    /// The paper's reported outcome, where stated.
    pub expected_resolvable: bool,
    /// The paper's reported iteration count (Figure 9's `Itns`).
    pub paper_iterations: Option<u32>,
    /// The paper's reported total time in seconds.
    pub paper_total_secs: Option<f64>,
}

fn queue_run(
    benchmark: &'static str,
    enq: EnqueueVariant,
    deq: DequeueVariant,
    wl: &str,
    paper_iterations: u32,
    paper_total_secs: f64,
) -> BenchmarkRun {
    let w = Workload::parse(wl).expect("workload");
    BenchmarkRun {
        benchmark,
        test: wl.to_string(),
        source: queue::queue_source(enq, deq, &w),
        options: Options {
            config: Config {
                unroll: w.total_inserts() + 2,
                pool: w.total_inserts() + 2,
                ..Config::default()
            },
            ..Options::default()
        },
        expected_resolvable: true,
        paper_iterations: Some(paper_iterations),
        paper_total_secs: Some(paper_total_secs),
    }
}

fn barrier_run(
    benchmark: &'static str,
    v: BarrierVariant,
    n: usize,
    b: usize,
    paper_iterations: u32,
    paper_total_secs: f64,
) -> BenchmarkRun {
    BenchmarkRun {
        benchmark,
        test: format!("N={n},B={b}"),
        source: barrier::barrier_source(v, n, b),
        options: Options {
            config: Config {
                hole_width: 2,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        },
        expected_resolvable: true,
        paper_iterations: Some(paper_iterations),
        paper_total_secs: Some(paper_total_secs),
    }
}

fn set_run(
    benchmark: &'static str,
    v: SetVariant,
    wl: &str,
    expected_resolvable: bool,
    paper_iterations: u32,
    paper_total_secs: f64,
) -> BenchmarkRun {
    let w = Workload::parse(wl).expect("workload");
    BenchmarkRun {
        benchmark,
        test: wl.to_string(),
        source: set::set_source(v, &w),
        options: Options {
            config: Config {
                unroll: w.total_inserts() + 3,
                pool: w.total_inserts() + 3,
                ..Config::default()
            },
            ..Options::default()
        },
        expected_resolvable,
        paper_iterations: Some(paper_iterations),
        paper_total_secs: Some(paper_total_secs),
    }
}

fn philo_run(p: usize, t: usize, paper_iterations: u32, paper_total_secs: f64) -> BenchmarkRun {
    BenchmarkRun {
        benchmark: "dinphilo",
        test: format!("N={p},T={t}"),
        source: dinphilo::dinphilo_source(PhiloVariant::Sketch, p, t),
        options: Options {
            config: Config {
                hole_width: 3,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        },
        expected_resolvable: true,
        paper_iterations: Some(paper_iterations),
        paper_total_secs: Some(paper_total_secs),
    }
}

/// Every benchmark/test pair of the paper's Figure 9, with the paper's
/// reported iteration counts and total times for comparison.
pub fn figure9_runs() -> Vec<BenchmarkRun> {
    use BarrierVariant::{Full as BFull, Restricted as BRestricted};
    use DequeueVariant::{Given, SketchSoup};
    use EnqueueVariant::{Full, Restricted};
    use SetVariant::{FineFull, FineRestricted, Lazy};
    vec![
        queue_run("queueE1", Restricted, Given, "ed(ee|dd)", 1, 8.79),
        queue_run("queueE1", Restricted, Given, "ed(ed|ed)", 1, 9.24),
        queue_run("queueE1", Restricted, Given, "(e|e|e)ddd", 1, 13.0),
        queue_run("queueDE1", Restricted, SketchSoup, "ed(ee|dd)", 4, 46.97),
        queue_run("queueDE1", Restricted, SketchSoup, "ed(ed|ed)", 4, 64.18),
        queue_run("queueE2", Full, Given, "ed(ed|ed)", 5, 114.7),
        queue_run("queueE2", Full, Given, "(e|e|e)ddd", 8, 249.2),
        queue_run("queueDE2", Full, SketchSoup, "ed(ed|ed)", 10, 3091.37),
        barrier_run("barrier1", BRestricted, 3, 2, 4, 49.74),
        barrier_run("barrier1", BRestricted, 3, 3, 8, 120.21),
        barrier_run("barrier2", BFull, 2, 3, 9, 66.46),
        set_run("fineset1", FineRestricted, "ar(ar|ar)", true, 2, 130.44),
        set_run("fineset1", FineRestricted, "ar(ar|ar|ar)", true, 1, 363.89),
        set_run("fineset1", FineRestricted, "ar(a|r|a|r)", true, 1, 196.52),
        set_run("fineset1", FineRestricted, "ar(arar|arar)", true, 1, 165.43),
        set_run("fineset1", FineRestricted, "ar(aaaa|rrrr)", true, 2, 225.54),
        set_run("fineset2", FineFull, "ar(ar|ar)", true, 3, 281.46),
        set_run("fineset2", FineFull, "ar(ar|ar|ar)", true, 3, 795.19),
        set_run("fineset2", FineFull, "ar(a|r|a|r)", true, 2, 384.83),
        set_run("fineset2", FineFull, "ar(arar|arar)", true, 2, 299.97),
        set_run("fineset2", FineFull, "ar(aaaa|rrrr)", true, 3, 468.7),
        set_run("lazyset", Lazy, "ar(aa|rr)", true, 12, 179.17),
        set_run("lazyset", Lazy, "ar(ar|ar)", false, 7, 100.24),
        philo_run(3, 5, 4, 34.03),
        philo_run(4, 3, 3, 54.46),
        philo_run(5, 3, 3, 745.94),
    ]
}

/// A Table 1 row: benchmark, description, a representative run for
/// computing |C|, and the paper's reported |C|.
pub struct Table1Entry {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// The paper's description.
    pub description: &'static str,
    /// A representative run (|C| is workload-independent).
    pub run: BenchmarkRun,
    /// The paper's reported candidate-space size, as a power of ten
    /// (`None` when given exactly).
    pub paper_space: &'static str,
}

/// The ten sketches of the paper's Table 1.
pub fn table1_entries() -> Vec<Table1Entry> {
    use BarrierVariant::{Full as BFull, Restricted as BRestricted};
    use DequeueVariant::{Given, SketchSoup};
    use EnqueueVariant::{Full, Restricted};
    use SetVariant::{FineFull, FineRestricted, Lazy};
    vec![
        Table1Entry {
            benchmark: "queueE1",
            description: "Lock-free queue: restricted Enqueue()",
            run: queue_run("queueE1", Restricted, Given, "ed(ed|ed)", 1, 0.0),
            paper_space: "4",
        },
        Table1Entry {
            benchmark: "queueE2",
            description: "Lock-free queue, full Enqueue()",
            run: queue_run("queueE2", Full, Given, "ed(ed|ed)", 5, 0.0),
            paper_space: "10^6",
        },
        Table1Entry {
            benchmark: "queueDE1",
            description: "queueE1, plus sketched Dequeue()",
            run: queue_run("queueDE1", Restricted, SketchSoup, "ed(ed|ed)", 4, 0.0),
            paper_space: "10^3",
        },
        Table1Entry {
            benchmark: "queueDE2",
            description: "queueE2, plus sketched Dequeue()",
            run: queue_run("queueDE2", Full, SketchSoup, "ed(ed|ed)", 10, 0.0),
            paper_space: "10^8",
        },
        Table1Entry {
            benchmark: "barrier1",
            description: "Sense-reversing barrier, restricted",
            run: barrier_run("barrier1", BRestricted, 3, 2, 4, 0.0),
            paper_space: "10^4",
        },
        Table1Entry {
            benchmark: "barrier2",
            description: "Sense-reversing barrier, full",
            run: barrier_run("barrier2", BFull, 2, 3, 9, 0.0),
            paper_space: "10^7",
        },
        Table1Entry {
            benchmark: "fineset1",
            description: "Fine-locked list, restricted find() method",
            run: set_run("fineset1", FineRestricted, "ar(ar|ar)", true, 2, 0.0),
            paper_space: "10^4",
        },
        Table1Entry {
            benchmark: "fineset2",
            description: "Fine-locked list, full find()",
            run: set_run("fineset2", FineFull, "ar(ar|ar)", true, 3, 0.0),
            paper_space: "10^7",
        },
        Table1Entry {
            benchmark: "lazyset",
            description: "Lazy list, singly-locked remove()",
            run: set_run("lazyset", Lazy, "ar(aa|rr)", true, 12, 0.0),
            paper_space: "10^3",
        },
        Table1Entry {
            benchmark: "dinphilo",
            description: "Approximation of dining philosophers problem",
            run: philo_run(3, 5, 4, 0.0),
            paper_space: "10^6",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psketch_core::Synthesis;

    #[test]
    fn all_figure9_sources_compile() {
        for run in figure9_runs() {
            psketch_lang::check_program(&run.source)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", run.benchmark, run.test));
        }
    }

    #[test]
    fn all_figure9_sources_lower() {
        for run in figure9_runs() {
            Synthesis::new(&run.source, run.options.clone())
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", run.benchmark, run.test));
        }
    }

    #[test]
    fn table1_spaces_have_expected_magnitude() {
        // Our sketches are reconstructions; |C| should land within
        // roughly two orders of magnitude of the paper's Table 1.
        let expected: &[(&str, f64)] = &[
            ("queueE1", 0.6), // 4
            ("queueE2", 6.0),
            ("queueDE1", 3.0),
            ("queueDE2", 8.0),
            ("barrier1", 4.0),
            ("barrier2", 7.0),
            ("fineset1", 4.0),
            ("fineset2", 7.0),
            ("lazyset", 3.0),
            ("dinphilo", 2.0), // our sketch is deliberately leaner than the paper's 10^6
        ];
        for entry in table1_entries() {
            let s = Synthesis::new(&entry.run.source, entry.run.options.clone()).unwrap();
            let log = s.lowered().holes.log10_candidate_space();
            let want = expected
                .iter()
                .find(|(n, _)| *n == entry.benchmark)
                .unwrap()
                .1;
            assert!(
                (log - want).abs() <= 2.5,
                "{}: log10|C| = {log:.2}, paper ~{want}",
                entry.benchmark
            );
        }
    }

    #[test]
    fn checker_args_extract_consumes_shared_flags() {
        let mut args: Vec<String> = [
            "queueE1",
            "--no-por",
            "--bank-cap",
            "7",
            "--no-prescreen",
            "--report-json",
            "out",
            "--no-compile",
            "--no-symmetry",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let parsed = CheckerArgs::try_extract(&mut args).expect("flags parse");
        assert_eq!(
            parsed,
            CheckerArgs {
                por: false,
                symmetry: false,
                prescreen: false,
                compile: false,
                bank_capacity: 7,
            }
        );
        // Binary-specific arguments survive, in order.
        assert_eq!(args, ["queueE1", "--report-json", "out"]);
        let mut opts = Options::default();
        parsed.apply(&mut opts);
        assert!(!opts.por && !opts.symmetry && !opts.prescreen && !opts.compile);
        assert_eq!(opts.bank_capacity, 7);
    }

    #[test]
    fn checker_args_no_compile_alone_disables_only_compile() {
        let mut args: Vec<String> = vec!["queueE1".into(), "--no-compile".into()];
        let parsed = CheckerArgs::try_extract(&mut args).expect("flag parses");
        assert_eq!(args, ["queueE1"], "--no-compile is consumed");
        let d = CheckerArgs::default();
        assert_eq!(
            parsed,
            CheckerArgs {
                compile: false,
                ..d
            }
        );
        let mut opts = Options::default();
        parsed.apply(&mut opts);
        assert!(!opts.compile);
        assert_eq!(opts.por, Options::default().por);
    }

    #[test]
    fn checker_args_default_matches_options_default() {
        let mut args: Vec<String> = vec!["filter".into()];
        let parsed = CheckerArgs::try_extract(&mut args).expect("no flags is fine");
        let d = Options::default();
        assert_eq!(parsed.por, d.por);
        assert_eq!(parsed.symmetry, d.symmetry);
        assert_eq!(parsed.prescreen, d.prescreen);
        assert_eq!(parsed.compile, d.compile);
        assert_eq!(parsed.bank_capacity, d.bank_capacity);
    }

    #[test]
    fn checker_args_reject_bad_bank_cap() {
        for bad in [
            vec!["--bank-cap".to_string()],
            vec!["--bank-cap".to_string(), "soon".to_string()],
        ] {
            let mut args = bad;
            assert!(CheckerArgs::try_extract(&mut args).is_err());
        }
    }

    #[test]
    fn registry_covers_figure9() {
        let runs = figure9_runs();
        assert_eq!(runs.len(), 26);
        let benchmarks: std::collections::HashSet<&str> =
            runs.iter().map(|r| r.benchmark).collect();
        for b in [
            "queueE1", "queueE2", "queueDE1", "queueDE2", "barrier1", "barrier2", "fineset1",
            "fineset2", "lazyset", "dinphilo",
        ] {
            assert!(benchmarks.contains(b), "missing {b}");
        }
    }
}
