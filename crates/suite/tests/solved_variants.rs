//! Harness validation: the known-correct ("solved") implementation of
//! every benchmark must pass verification on each of its Figure 9
//! workloads. This pins the correctness conditions themselves — a
//! harness that rejects the textbook solution would silently turn
//! resolvable benchmarks into NOs.

use psketch_core::{Config, Options, Synthesis};
use psketch_suite::barrier::{barrier_source, BarrierVariant};
use psketch_suite::dinphilo::{dinphilo_source, PhiloVariant};
use psketch_suite::dlist::{dlist_source, DlistVariant};
use psketch_suite::queue::{queue_source, DequeueVariant, EnqueueVariant};
use psketch_suite::set::{set_source, SetVariant};
use psketch_suite::workload::Workload;

fn assert_solved(src: &str, opts: Options, what: &str) {
    let s = Synthesis::new(src, opts).unwrap_or_else(|e| panic!("{what}: {e}"));
    let a = s.lowered().holes.identity_assignment();
    if let Some(cex) = s.verify_candidate(&a) {
        panic!(
            "{what}: known-correct implementation rejected:\n{}",
            psketch_exec::format_trace(s.lowered(), &cex)
        );
    }
}

#[test]
fn solved_queue_passes_all_small_workloads() {
    for wl in ["ed(e|d)", "ed(ee|dd)", "ed(ed|ed)", "(e|e)dd"] {
        let w = Workload::parse(wl).unwrap();
        let opts = Options {
            config: Config {
                unroll: w.total_inserts() + 2,
                pool: w.total_inserts() + 2,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = queue_source(EnqueueVariant::Solved, DequeueVariant::Given, &w);
        assert_solved(&src, opts, &format!("queue {wl}"));
    }
}

#[test]
#[ignore = "slow: the three-thread and long workloads (run with --ignored, release)"]
fn solved_queue_passes_large_workloads() {
    for wl in ["(e|e|e)ddd", "ed(eded|eded)"] {
        let w = Workload::parse(wl).unwrap();
        let opts = Options {
            config: Config {
                unroll: w.total_inserts() + 2,
                pool: w.total_inserts() + 2,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = queue_source(EnqueueVariant::Solved, DequeueVariant::Given, &w);
        assert_solved(&src, opts, &format!("queue {wl}"));
    }
}

#[test]
fn solved_barrier_passes_paper_parameters() {
    for (n, b) in [(2, 2), (2, 3), (3, 2)] {
        let opts = Options {
            config: Config {
                hole_width: 2,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = barrier_source(BarrierVariant::Solved, n, b);
        assert_solved(&src, opts, &format!("barrier N={n} B={b}"));
    }
}

#[test]
fn solved_fineset_passes_mixed_workloads() {
    for wl in ["ar(a|r)", "ar(ar|ar)", "ar(aa|rr)"] {
        let w = Workload::parse(wl).unwrap();
        let opts = Options {
            config: Config {
                unroll: w.total_inserts() + 3,
                pool: w.total_inserts() + 3,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = set_source(SetVariant::FineSolved, &w);
        assert_solved(&src, opts, &format!("fineset {wl}"));
    }
}

#[test]
fn solved_philosophers_pass() {
    for (p, t) in [(2, 2), (3, 2)] {
        let opts = Options {
            config: Config {
                hole_width: 3,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = dinphilo_source(PhiloVariant::Solved, p, t);
        assert_solved(&src, opts, &format!("dinphilo P={p} T={t}"));
    }
}

#[test]
fn solved_dlist_passes() {
    for writers in [1, 2] {
        let opts = Options {
            config: Config {
                unroll: 6,
                pool: 6,
                ..Config::default()
            },
            ..Options::default()
        };
        let src = dlist_source(DlistVariant::Solved, writers);
        assert_solved(&src, opts, &format!("dlist writers={writers}"));
    }
}

#[test]
fn broken_variants_are_rejected() {
    // Sanity that the harnesses are not vacuous: breaking the solved
    // queue (link before swap) must produce a counterexample.
    let w = Workload::parse("ed(e|d)").unwrap();
    let opts = Options {
        config: Config {
            unroll: w.total_inserts() + 2,
            pool: w.total_inserts() + 2,
            ..Config::default()
        },
        ..Options::default()
    };
    let src = queue_source(EnqueueVariant::Solved, DequeueVariant::Given, &w).replace(
        "tmp = AtomicSwap(tail, newEntry);\n    tmp.next = newEntry;",
        "tmp.next = newEntry;\n    tmp = AtomicSwap(tail, newEntry);",
    );
    assert!(src.contains("tmp.next = newEntry;\n    tmp = AtomicSwap"));
    let s = Synthesis::new(&src, opts).unwrap();
    let a = s.lowered().holes.identity_assignment();
    assert!(
        s.verify_candidate(&a).is_some(),
        "broken enqueue must be rejected"
    );
}
