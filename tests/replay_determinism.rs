//! Replay determinism across the benchmark suite.
//!
//! Every counterexample the checker reports carries the exact
//! transition-level worker schedule that reached the failure
//! (`CexTrace::schedule`). The schedule-bank prescreen relies on that
//! field being faithful: for every suite workload, replaying a
//! checker-found trace's schedule must reproduce a failure, land the
//! same failure kind, and reach the identical final-state fingerprint
//! on repeated replays — at 1, 2 and 4 checker threads and with
//! partial-order reduction both on and off.

use psketch_repro::exec::{
    check_parallel_limits, check_with_limits, replay_fp, SearchLimits, Verdict,
};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized.
const MAX_STATES: usize = 10_000;

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// The identity assignment plus `extra` random ones.
fn candidates(l: &Lowered, extra: usize, rng: &mut Rng) -> Vec<Assignment> {
    let mut out = vec![l.holes.identity_assignment()];
    for _ in 0..extra {
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        out.push(Assignment::from_values(values));
    }
    out
}

/// Replays `schedule` twice and checks both runs fail identically.
fn assert_replay_deterministic(
    l: &Lowered,
    a: &Assignment,
    cex: &psketch_repro::exec::CexTrace,
    label: &str,
) {
    let order: Vec<usize> = cex.schedule.iter().map(|&w| w as usize).collect();
    let (first, fp1) = replay_fp(l, a, &order);
    let first = first.unwrap_or_else(|| panic!("{label}: replaying the schedule must fail"));
    assert_eq!(
        first.failure.kind, cex.failure.kind,
        "{label}: replay must land the reported failure kind"
    );
    let (second, fp2) = replay_fp(l, a, &order);
    let second = second.unwrap_or_else(|| panic!("{label}: second replay must fail too"));
    assert_eq!(
        fp1, fp2,
        "{label}: repeated replays must reach the same final-state fingerprint"
    );
    assert_eq!(first.steps, second.steps, "{label}: replay must be exact");
    assert_eq!(first.schedule, second.schedule, "{label}");
    // The trace's own schedule records the workers that actually
    // fired; replaying it must converge (a fixed point of replay).
    let again: Vec<usize> = first.schedule.iter().map(|&w| w as usize).collect();
    let (third, fp3) = replay_fp(l, a, &again);
    assert!(third.is_some(), "{label}: the fired schedule must refute");
    assert_eq!(fp1, fp3, "{label}: fired-schedule replay must agree");
}

#[test]
fn replay_reproduces_suite_counterexamples() {
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(23);
    let mut refuted = 0usize;
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            for por in [true, false] {
                let limits = SearchLimits {
                    por,
                    ..SearchLimits::states(MAX_STATES)
                };
                for threads in [1usize, 2, 4] {
                    let out = if threads > 1 {
                        check_parallel_limits(&l, a, &limits, threads)
                    } else {
                        check_with_limits(&l, a, &limits)
                    };
                    if let Verdict::Fail(cex) = &out.verdict {
                        refuted += 1;
                        let label = format!(
                            "{} candidate {ix} threads={threads} por={por}",
                            run.benchmark
                        );
                        assert_replay_deterministic(&l, a, cex, &label);
                    }
                }
            }
        }
    }
    assert!(
        refuted > 0,
        "the suite must produce at least one counterexample to exercise replay"
    );
}
