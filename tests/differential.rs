//! Differential testing of the whole stack against independent Rust
//! reference semantics:
//!
//! * random arithmetic expressions: the synthesizer must recover the
//!   reference evaluator's result through a hole (this exercises
//!   lowering, constant folding, the concrete evaluator, the symbolic
//!   bitvector circuits and the SAT solver against each other);
//! * random two-thread read-modify-write programs: the model checker's
//!   verdict must match a brute-force interleaving enumerator.

use psketch_repro::core::{Config, Options, Synthesis};
use psketch_testutil::{cases, Rng};

// ---------------------------------------------------------------
// Part 1: expression semantics.
// ---------------------------------------------------------------

/// A tiny expression AST mirrored in both PSKETCH source and Rust.
#[derive(Clone, Debug)]
enum E {
    Const(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    DivC(Box<E>, i8),
    ModC(Box<E>, i8),
    Neg(Box<E>),
    Lt(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Not(Box<E>),
}

fn wrap8(v: i64) -> i64 {
    let r = v.rem_euclid(256);
    if r >= 128 {
        r - 256
    } else {
        r
    }
}

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::Const(c) => *c as i64,
            E::Add(a, b) => wrap8(a.eval() + b.eval()),
            E::Sub(a, b) => wrap8(a.eval() - b.eval()),
            E::Mul(a, b) => wrap8(a.eval().wrapping_mul(b.eval())),
            E::DivC(a, c) => wrap8(a.eval().wrapping_div(*c as i64)),
            E::ModC(a, c) => wrap8(a.eval().wrapping_rem(*c as i64)),
            E::Neg(a) => wrap8(-a.eval()),
            E::Lt(a, b) => i64::from(a.eval() < b.eval()),
            E::Eq(a, b) => i64::from(a.eval() == b.eval()),
            E::And(a, b) => i64::from(a.eval() != 0 && b.eval() != 0),
            E::Or(a, b) => i64::from(a.eval() != 0 || b.eval() != 0),
            E::Not(a) => i64::from(a.eval() == 0),
        }
    }

    fn to_source(&self) -> String {
        match self {
            E::Const(c) => {
                if *c < 0 {
                    format!("(0 - {})", -(*c as i64))
                } else {
                    c.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            E::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            E::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            E::DivC(a, c) => format!("({} / {})", a.to_source(), c),
            E::ModC(a, c) => format!("({} % {})", a.to_source(), c),
            E::Neg(a) => format!("(-{})", a.to_source()),
            E::Lt(a, b) => format!("({} < {})", a.to_source(), b.to_source()),
            E::Eq(a, b) => format!("({} == {})", a.to_source(), b.to_source()),
            E::And(a, b) => format!("(({} != 0) && ({} != 0))", a.to_source(), b.to_source()),
            E::Or(a, b) => format!("(({} != 0) || ({} != 0))", a.to_source(), b.to_source()),
            E::Not(a) => format!("(!({} != 0))", a.to_source()),
        }
    }
}

/// Random expression tree, recursion bounded by `depth`.
fn random_expr(rng: &mut Rng, depth: usize) -> E {
    if depth == 0 || rng.below(3) == 0 {
        return E::Const(rng.any_i8());
    }
    let d = depth - 1;
    match rng.below(11) {
        0 => E::Add(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        1 => E::Sub(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        2 => E::Mul(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        3 => {
            let mag = rng.range_i64(1, 13) as i8;
            let c = if rng.any_bool() { mag } else { -mag };
            E::DivC(Box::new(random_expr(rng, d)), c)
        }
        4 => {
            let c = rng.range_i64(1, 13) as i8;
            E::ModC(Box::new(random_expr(rng, d)), c)
        }
        5 => E::Neg(Box::new(random_expr(rng, d))),
        6 => E::Lt(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        7 => E::Eq(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        8 => E::And(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        9 => E::Or(Box::new(random_expr(rng, d)), Box::new(random_expr(rng, d))),
        _ => E::Not(Box::new(random_expr(rng, d))),
    }
}

/// The synthesizer must fill `??(8)` with exactly the reference
/// value of a random expression — concrete and symbolic semantics
/// agree with the Rust oracle bit for bit.
#[test]
fn expression_semantics_match_reference() {
    cases(48, |rng| {
        let e = random_expr(rng, 4);
        let expected = wrap8(e.eval());
        let src = format!(
            "int g;
             harness void main() {{
                 g = {};
                 assert g == ??(8) - 128;
             }}",
            e.to_source()
        );
        let out = Synthesis::new(&src, Options::default())
            .unwrap_or_else(|err| panic!("{err}\n{src}"))
            .run();
        let r = out
            .resolution
            .unwrap_or_else(|| panic!("unresolvable: {src}"));
        // hole - 128 == expected  =>  hole = expected + 128 (0..=255).
        assert_eq!(
            r.assignment.value(0) as i64,
            expected + 128,
            "expr {} evaluated {} (source {})",
            e.to_source(),
            expected,
            src
        );
    });
}

// ---------------------------------------------------------------
// Part 2: interleaving semantics.
// ---------------------------------------------------------------

/// One thread op: an atomic add of `c`, or a racy two-step
/// read-modify-write add of `c`.
#[derive(Clone, Copy, Debug)]
enum OpA {
    Atomic(i8),
    Racy(i8),
}

/// Brute-force all interleavings of the micro-steps and collect the
/// possible final values of `g`.
fn possible_finals(threads: &[Vec<OpA>]) -> std::collections::BTreeSet<i64> {
    #[derive(Clone)]
    struct Th {
        ops: Vec<OpA>,
        op_ix: usize,
        /// For a racy op: Some(read value) once the read happened.
        pending: Option<i64>,
    }
    fn dfs(g: i64, ths: &mut Vec<Th>, out: &mut std::collections::BTreeSet<i64>) {
        let mut any = false;
        for t in 0..ths.len() {
            if ths[t].op_ix >= ths[t].ops.len() {
                continue;
            }
            any = true;
            let op = ths[t].ops[ths[t].op_ix];
            match (op, ths[t].pending) {
                (OpA::Atomic(c), _) => {
                    ths[t].op_ix += 1;
                    dfs(wrap8(g + c as i64), ths, out);
                    ths[t].op_ix -= 1;
                }
                (OpA::Racy(_), None) => {
                    ths[t].pending = Some(g);
                    dfs(g, ths, out);
                    ths[t].pending = None;
                }
                (OpA::Racy(c), Some(read)) => {
                    ths[t].pending = None;
                    ths[t].op_ix += 1;
                    dfs(wrap8(read + c as i64), ths, out);
                    ths[t].op_ix -= 1;
                    ths[t].pending = Some(read);
                }
            }
        }
        if !any {
            out.insert(g);
        }
    }
    let mut ths: Vec<Th> = threads
        .iter()
        .map(|ops| Th {
            ops: ops.clone(),
            op_ix: 0,
            pending: None,
        })
        .collect();
    let mut out = std::collections::BTreeSet::new();
    dfs(0, &mut ths, &mut out);
    out
}

fn thread_source(ops: &[OpA], tid: usize) -> String {
    let mut out = String::new();
    for (k, op) in ops.iter().enumerate() {
        match op {
            OpA::Atomic(c) => out.push_str(&format!(
                "                    atomic {{ g = g + ({c}); }}\n"
            )),
            OpA::Racy(c) => out.push_str(&format!(
                "                    int t{tid}_{k} = g; g = t{tid}_{k} + ({c});\n"
            )),
        }
    }
    out
}

fn random_op(rng: &mut Rng) -> OpA {
    let c = rng.range_i64(-3, 3) as i8;
    if rng.any_bool() {
        OpA::Atomic(c)
    } else {
        OpA::Racy(c)
    }
}

fn random_ops(rng: &mut Rng) -> Vec<OpA> {
    let n = 1 + rng.below(2);
    (0..n).map(|_| random_op(rng)).collect()
}

/// The model checker accepts `assert g == V` exactly when the
/// brute-force interleaving oracle says V is the *only* possible
/// final value.
#[test]
fn checker_verdict_matches_interleaving_oracle() {
    cases(24, |rng| {
        let t0 = random_ops(rng);
        let t1 = random_ops(rng);
        let threads = vec![t0.clone(), t1.clone()];
        let possible = possible_finals(&threads);
        // The serial (t0 then t1) value is always possible.
        let serial: i64 = wrap8(
            t0.iter()
                .chain(&t1)
                .map(|op| match op {
                    OpA::Atomic(c) | OpA::Racy(c) => *c as i64,
                })
                .sum(),
        );
        assert!(possible.contains(&serial));

        let src = format!(
            "int g;
             harness void main() {{
                 fork (i; 2) {{
                     if (i == 0) {{
{}                   }} else {{
{}                   }}
                 }}
                 assert g == ({serial});
             }}",
            thread_source(&t0, 0),
            thread_source(&t1, 1),
        );
        let s = Synthesis::new(&src, Options::default()).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let a = s.lowered().holes.identity_assignment();
        let cex = s.verify_candidate(&a);
        let deterministic = possible.len() == 1;
        assert_eq!(
            cex.is_none(),
            deterministic,
            "possible finals {:?}, asserted {}, checker cex: {:?}\n{}",
            possible,
            serial,
            cex.map(|c| c.failure.kind),
            src
        );
    });
}

// ---------------------------------------------------------------
// Part 3: front-end robustness.
// ---------------------------------------------------------------

#[test]
fn deeply_nested_expressions_parse() {
    // The recursive-descent parser burns ~10 stack frames per nesting
    // level; run the deep case on a thread with a generous stack so
    // the test measures the parser, not the default stack size.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut e = String::from("1");
            for _ in 0..200 {
                e = format!("({e} + 1)");
            }
            let src = format!("harness void main() {{ int x = {e}; assert x > 0 || x < 1; }}");
            psketch_repro::lang::check_program(&src).expect("deep nesting parses");
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn wide_programs_lower() {
    // 200 globals, 200 assignments.
    let mut src = String::new();
    for k in 0..200 {
        src.push_str(&format!("int g{k};\n"));
    }
    src.push_str("harness void main() {\n");
    for k in 0..200 {
        src.push_str(&format!("    g{k} = {};\n", k % 100));
    }
    src.push_str("    assert g199 == 99;\n}\n");
    let out = Synthesis::new(&src, Options::default()).unwrap().run();
    assert!(out.resolved());
}

#[test]
fn int_width_is_configurable() {
    for width in [4u32, 8, 12] {
        let max = (1i64 << (width - 1)) - 1;
        let src = format!(
            "int g;
             harness void main() {{
                 g = {max} + 1;
                 assert g < 0;
             }}"
        );
        let opts = Options {
            config: Config {
                int_width: width,
                ..Config::default()
            },
            ..Options::default()
        };
        let out = Synthesis::new(&src, opts).unwrap().run();
        assert!(out.resolved(), "width {width}: wrap-around must hold");
    }
}
