//! Differential testing of the parallel model checker against the
//! sequential one, across the benchmark suite.
//!
//! For every suite sketch and a handful of candidates (the identity
//! assignment plus seeded random hole values), the parallel checker at
//! 2, 4 and 8 threads must agree with the sequential verdict. When the
//! candidate fails, the parallel counterexample may be a *different*
//! interleaving than the sequential one, so instead of comparing traces
//! we assert that the parallel trace actually refutes the candidate
//! (symbolic replay reproduces the failure).

use psketch_repro::exec::{check_parallel, check_with_limit, Verdict};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_repro::symbolic::trace_reproduces;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized. Both
/// checkers visit the same canonical state set, so when the sequential
/// search completes under the limit the parallel one does too.
const MAX_STATES: usize = 10_000;

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// The identity assignment plus `extra` random ones.
fn candidates(l: &Lowered, extra: usize, rng: &mut Rng) -> Vec<Assignment> {
    let mut out = vec![l.holes.identity_assignment()];
    for _ in 0..extra {
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        out.push(Assignment::from_values(values));
    }
    out
}

fn compare(l: &Lowered, a: &Assignment, label: &str) {
    let seq = check_with_limit(l, a, MAX_STATES);
    for threads in [2usize, 4, 8] {
        let par = check_parallel(l, a, MAX_STATES, threads);
        match (&seq.verdict, &par.verdict) {
            (Verdict::Unknown, _) => {
                // Sequential hit the state limit; exploration order
                // differs, so the parallel verdict may legitimately be
                // a (valid) failure found before the limit.
                if let Verdict::Fail(cex) = &par.verdict {
                    assert!(
                        trace_reproduces(l, cex, a),
                        "{label}: parallel cex does not refute candidate"
                    );
                }
            }
            (Verdict::Pass, v) => {
                assert!(
                    matches!(v, Verdict::Pass),
                    "{label} threads={threads}: sequential passes, parallel {v:?}"
                );
                assert_eq!(
                    seq.stats.states, par.stats.states,
                    "{label} threads={threads}: passing searches must agree on the state count"
                );
                assert_eq!(par.per_thread_states.len(), threads);
            }
            (Verdict::Fail(_), v) => {
                let Verdict::Fail(cex) = v else {
                    panic!("{label} threads={threads}: sequential fails, parallel {v:?}");
                };
                assert!(
                    trace_reproduces(l, cex, a),
                    "{label} threads={threads}: parallel cex does not refute candidate"
                );
            }
        }
    }
}

#[test]
fn parallel_agrees_on_suite_sketches() {
    // One run per distinct benchmark keeps the test tractable; the
    // generated sources differ only in workload within a benchmark.
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(7);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("{} candidate {ix}", run.benchmark));
        }
    }
}

#[test]
fn parallel_agrees_on_small_programs() {
    let programs = [
        // Deterministic pass.
        "int g;
         harness void main() {
             fork (i; 2) { int old = AtomicReadAndIncr(g); }
             assert g == 2;
         }",
        // Lost-update race: fails.
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        // Deadlock.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { atomic (a == 1) { } b = 1; }
                 else { atomic (b == 1) { } a = 1; }
             }
         }",
        // Three threads, bigger interleaving space.
        "int g;
         harness void main() {
             fork (i; 3) { g = g + 1; g = g + 1; }
             assert g >= 2;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(11);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        for (ix, a) in candidates(&l, 3, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("program {px} candidate {ix}"));
        }
    }
}

#[test]
fn threads_one_is_the_sequential_path() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    let seq = check_with_limit(&l, &a, MAX_STATES);
    let par = check_parallel(&l, &a, MAX_STATES, 1);
    // threads = 1 falls back to the sequential checker: identical
    // verdict, stats and (deterministic) counterexample.
    assert_eq!(seq.stats.states, par.stats.states);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
    let (Verdict::Fail(a_cex), Verdict::Fail(b_cex)) = (&seq.verdict, &par.verdict) else {
        panic!("both must fail");
    };
    assert_eq!(a_cex.steps, b_cex.steps);
    assert_eq!(a_cex.failure.kind, b_cex.failure.kind);
}
