//! Differential testing of the parallel model checker against the
//! sequential one, across the benchmark suite.
//!
//! For every suite sketch and a handful of candidates (the identity
//! assignment plus seeded random hole values), the parallel checker at
//! 2, 4 and 8 threads must agree with the sequential verdict. When the
//! candidate fails, the parallel counterexample may be a *different*
//! interleaving than the sequential one, so instead of comparing traces
//! we assert that the parallel trace actually refutes the candidate
//! (symbolic replay reproduces the failure).

use psketch_repro::exec::{check_parallel, check_with_limit, Interrupt, Verdict};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_repro::symbolic::trace_reproduces;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized. Both
/// checkers visit the same canonical state set, so when the sequential
/// search completes under the limit the parallel one does too.
const MAX_STATES: usize = 10_000;

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// The identity assignment plus `extra` random ones.
fn candidates(l: &Lowered, extra: usize, rng: &mut Rng) -> Vec<Assignment> {
    let mut out = vec![l.holes.identity_assignment()];
    for _ in 0..extra {
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        out.push(Assignment::from_values(values));
    }
    out
}

fn compare(l: &Lowered, a: &Assignment, label: &str) {
    let seq = check_with_limit(l, a, MAX_STATES);
    for threads in [2usize, 4, 8] {
        let par = check_parallel(l, a, MAX_STATES, threads);
        match (&seq.verdict, &par.verdict) {
            (Verdict::Unknown(why), _) => {
                assert_eq!(
                    *why,
                    Interrupt::StateLimit,
                    "{label}: no deadline/cancel installed"
                );
                // Sequential hit the state limit; exploration order
                // differs, so the parallel verdict may legitimately be
                // a (valid) failure found before the limit.
                match &par.verdict {
                    Verdict::Fail(cex) => {
                        assert!(
                            trace_reproduces(l, cex, a),
                            "{label}: parallel cex does not refute candidate"
                        );
                    }
                    Verdict::Unknown(par_why) => {
                        assert_eq!(*par_why, Interrupt::StateLimit, "{label}");
                        // Both clamped to the limit: reported stats
                        // must agree despite the parallel overshoot.
                        assert_eq!(
                            seq.stats.states, par.stats.states,
                            "{label} threads={threads}: clamped unknown stats must agree"
                        );
                    }
                    Verdict::Pass => {
                        panic!(
                            "{label} threads={threads}: sequential hit the state limit; \
                             a passing parallel run would mean the checkers disagree \
                             on the reachable state count"
                        );
                    }
                }
            }
            (Verdict::Pass, v) => {
                assert!(
                    matches!(v, Verdict::Pass),
                    "{label} threads={threads}: sequential passes, parallel {v:?}"
                );
                assert_eq!(
                    seq.stats.states, par.stats.states,
                    "{label} threads={threads}: passing searches must agree on the state count"
                );
                assert_eq!(par.per_thread_states.len(), threads);
            }
            (Verdict::Fail(_), v) => {
                let Verdict::Fail(cex) = v else {
                    panic!("{label} threads={threads}: sequential fails, parallel {v:?}");
                };
                assert!(
                    trace_reproduces(l, cex, a),
                    "{label} threads={threads}: parallel cex does not refute candidate"
                );
            }
        }
    }
}

#[test]
fn parallel_agrees_on_suite_sketches() {
    // One run per distinct benchmark keeps the test tractable; the
    // generated sources differ only in workload within a benchmark.
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(7);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("{} candidate {ix}", run.benchmark));
        }
    }
}

#[test]
fn parallel_agrees_on_small_programs() {
    let programs = [
        // Deterministic pass.
        "int g;
         harness void main() {
             fork (i; 2) { int old = AtomicReadAndIncr(g); }
             assert g == 2;
         }",
        // Lost-update race: fails.
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        // Deadlock.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { atomic (a == 1) { } b = 1; }
                 else { atomic (b == 1) { } a = 1; }
             }
         }",
        // Three threads, bigger interleaving space.
        "int g;
         harness void main() {
             fork (i; 3) { g = g + 1; g = g + 1; }
             assert g >= 2;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(11);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        for (ix, a) in candidates(&l, 3, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("program {px} candidate {ix}"));
        }
    }
}

#[test]
fn threads_one_is_the_sequential_path() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    let seq = check_with_limit(&l, &a, MAX_STATES);
    let par = check_parallel(&l, &a, MAX_STATES, 1);
    // threads = 1 falls back to the sequential checker: identical
    // verdict, stats and (deterministic) counterexample.
    assert_eq!(seq.stats.states, par.stats.states);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
    let (Verdict::Fail(a_cex), Verdict::Fail(b_cex)) = (&seq.verdict, &par.verdict) else {
        panic!("both must fail");
    };
    assert_eq!(a_cex.steps, b_cex.steps);
    assert_eq!(a_cex.failure.kind, b_cex.failure.kind);
}

/// The pass/unknown boundary is claim-based and must sit at exactly
/// the reachable state count for every thread count: a limit of N
/// (the exact count) passes, N-1 is unknown — no thread-count-
/// dependent flip.
#[test]
fn state_limit_boundary_is_thread_count_independent() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int g;
         harness void main() {
             fork (i; 3) { int old = AtomicReadAndIncr(g); }
             assert g == 3;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    // Establish the exact reachable count with an unbounded
    // sequential search.
    let full = check_with_limit(&l, &a, usize::MAX);
    assert!(full.is_ok(), "baseline must pass");
    let n = full.stats.states;
    assert!(n > 2, "sketch must have a nontrivial state space");
    for threads in [1usize, 2, 4] {
        let exact = check_parallel(&l, &a, n, threads);
        assert!(
            matches!(exact.verdict, Verdict::Pass),
            "threads={threads}: limit == reachable count must pass"
        );
        assert_eq!(exact.stats.states, n, "threads={threads}");
        let under = check_parallel(&l, &a, n - 1, threads);
        assert!(
            matches!(under.verdict, Verdict::Unknown(Interrupt::StateLimit)),
            "threads={threads}: limit == count-1 must be unknown, got {:?}",
            under.verdict
        );
        // Reported stats are clamped to the limit even when racing
        // workers overshot the visited set.
        assert!(
            under.stats.states < n,
            "threads={threads}: clamped stats must respect the limit"
        );
    }
}

/// Failures before the interleaving search starts (prologue assertion,
/// first local-step absorption) must report the work actually done —
/// one examined state and the executed trace steps — identically in
/// both checkers, not zeroed counters.
#[test]
fn early_failures_report_real_counts() {
    let cfg = psketch_repro::ir::Config::default();
    // Prologue failure: the assert runs before any fork.
    let prologue = lowered(
        "int g;
         harness void main() {
             g = 3;
             assert g == 4;
             fork (i; 2) { g = g + 1; }
         }",
        &cfg,
    );
    // Initial-advance failure: each thread's first local burst trips.
    let advance = lowered(
        "int g;
         harness void main() {
             fork (i; 1) { int t = 1; assert t == 2; }
         }",
        &cfg,
    );
    for (name, l) in [("prologue", &prologue), ("advance", &advance)] {
        let a = l.holes.identity_assignment();
        let seq = check_with_limit(l, &a, MAX_STATES);
        assert!(matches!(seq.verdict, Verdict::Fail(_)), "{name}");
        assert_eq!(seq.stats.states, 1, "{name}: one context was examined");
        assert!(seq.stats.transitions > 0, "{name}: steps were executed");
        for threads in [2usize, 4] {
            let par = check_parallel(l, &a, MAX_STATES, threads);
            assert!(matches!(par.verdict, Verdict::Fail(_)), "{name}");
            assert_eq!(
                par.stats.states, seq.stats.states,
                "{name} threads={threads}: early-failure states must match sequential"
            );
            assert_eq!(
                par.stats.transitions, seq.stats.transitions,
                "{name} threads={threads}: early-failure transitions must match sequential"
            );
        }
    }
}
