//! Footprint-soundness property: independence really means
//! commutation.
//!
//! The partial-order reduction is sound only if the static effect
//! footprints over-approximate the dynamic behavior of every
//! transition: whenever two enabled workers' current transitions are
//! classified independent (`Footprint::may_conflict` is false), firing
//! them in either order from the same state must produce *identical*
//! outcomes — the same canonical state vector, the same Zobrist
//! fingerprint, or the same failure. This test drives that property
//! over every suite workload with seeded random walks through the real
//! transition system, checking every independent enabled pair at every
//! visited state.

use psketch_repro::exec::walker::Walker;
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_testutil::Rng;

/// Transitions per random walk. Deep enough to reach mid-workload
/// states with heap traffic; small enough to keep the suite sweep
/// test-sized.
const WALK_DEPTH: usize = 48;

/// Independent walks per (workload, candidate) pair.
const WALKS: usize = 3;

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// Fires `first` then `second` from the current state, captures the
/// outcome, and rewinds. Failures collapse to their display form
/// (kind, thread, step, span) — commuting transitions must fail
/// identically or not at all.
fn run_order(w: &mut Walker, first: usize, second: usize) -> Result<(Vec<i64>, u64), String> {
    let mark = w.mark();
    let out = w
        .fire(first)
        .and_then(|()| w.fire(second))
        .map(|()| (w.canonical(), w.fingerprint()))
        .map_err(|f| f.to_string());
    w.rewind(mark);
    out
}

/// Walks the transition system under a seeded schedule; at every
/// visited state, checks that each enabled pair the footprint layer
/// calls independent commutes. Returns the number of pairs checked.
fn walk(l: &Lowered, a: &Assignment, rng: &mut Rng, label: &str) -> usize {
    let Ok(mut w) = Walker::new(l, a) else {
        // The candidate fails in the prologue before any interleaving
        // exists; there is nothing to commute.
        return 0;
    };
    let mut checked = 0;
    for depth in 0..WALK_DEPTH {
        let enabled = w.enabled_workers();
        for (i, &x) in enabled.iter().enumerate() {
            for &y in &enabled[i + 1..] {
                if !w.independent(x, y) {
                    continue;
                }
                let xy = run_order(&mut w, x, y);
                let yx = run_order(&mut w, y, x);
                assert_eq!(
                    xy, yx,
                    "{label}: depth {depth}: workers {x} and {y} are classified \
                     independent but do not commute"
                );
                checked += 1;
            }
        }
        if enabled.is_empty() {
            break;
        }
        let pick = *rng.choose(&enabled);
        if w.fire(pick).is_err() {
            break;
        }
    }
    checked
}

#[test]
fn independent_transitions_commute_across_suite() {
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(29);
    let mut total = 0usize;
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        let mut cands = vec![l.holes.identity_assignment()];
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        cands.push(Assignment::from_values(values));
        for (cx, a) in cands.iter().enumerate() {
            for wx in 0..WALKS {
                total += walk(
                    &l,
                    a,
                    &mut rng,
                    &format!("{} candidate {cx} walk {wx}", run.benchmark),
                );
            }
        }
    }
    // The property must not pass vacuously: the suite has workloads
    // with genuinely independent transitions (disjoint heap cells,
    // distinct array slots), so the sweep must exercise real pairs.
    assert!(
        total > 0,
        "no independent enabled pair found anywhere in the suite"
    );
}

#[test]
fn independent_transitions_commute_on_crafted_programs() {
    // Hand-written programs aimed at each footprint feature: disjoint
    // globals, statically-resolved array cells, and per-thread heap
    // objects.
    let programs = [
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { a = a + 1; a = a * 2; }
                 else { b = b + 3; b = b * 2; }
             }
         }",
        "int[4] cells;
         harness void main() {
             fork (i; 2) { cells[i] = cells[i] + 1; cells[i + 2] = i; }
             assert cells[0] + cells[1] == 2;
         }",
        "struct Node { int val; Node next; }
         harness void main() {
             fork (i; 2) {
                 Node n = new Node();
                 n.val = i;
                 assert n.val == i;
             }
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut total = 0usize;
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        let a = l.holes.identity_assignment();
        psketch_testutil::cases(8, |rng| {
            walk(&l, &a, rng, &format!("crafted {px}"));
        });
        let mut rng = Rng::new(31);
        total += walk(&l, &a, &mut rng, &format!("crafted {px}"));
    }
    assert!(total > 0, "crafted programs must yield independent pairs");
}
