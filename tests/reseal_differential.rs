//! Differential testing of incremental resealing against fresh
//! compilation, across the example suite.
//!
//! [`CompiledProgram::reseal`] diffs the new candidate's hole values
//! against the previous artifact's per-thread hole lists and re-emits
//! only the threads whose holes changed, reusing every clean thread's
//! micro-op arrays and footprints by reference (and, when no worker is
//! dirty, the symmetry classes and POR tables wholesale). That reuse
//! is only sound if the resealed artifact is *bit-identical* to
//! sealing the same candidate from scratch — same micro-op code, same
//! sharpened footprints, same POR masks, same symmetry classes.
//!
//! This test walks a random sequence of candidates per suite sketch —
//! mostly single-hole flips (the CEGIS-neighbourhood case reseal is
//! built for), occasionally a full re-randomization — resealing each
//! artifact from its predecessor and asserting structural equality
//! with a fresh seal via `artifact_eq`. On a subset of steps it also
//! drives both artifacts through the checker at 1, 2 and 4 threads
//! with the reductions off and on, demanding identical verdicts and
//! (for deterministic configurations) identical searches.

use psketch_repro::exec::{
    check_compiled, check_parallel_compiled, CheckOutcome, CompiledProgram, SearchLimits, Verdict,
};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_repro::symbolic::trace_reproduces;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized.
const MAX_STATES: usize = 10_000;

fn limits(por: bool, symmetry: bool) -> SearchLimits {
    SearchLimits {
        por,
        symmetry,
        compile: true,
        ..SearchLimits::states(MAX_STATES)
    }
}

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// One step of the candidate walk: usually flip a single hole to a
/// fresh in-domain value (the neighbourhood a CEGIS iteration moves
/// in), sometimes re-randomize every hole.
fn walk_step(l: &Lowered, prev: &Assignment, rng: &mut Rng) -> Assignment {
    let n = l.holes.num_holes();
    let mut values = prev.values().to_vec();
    if n == 0 {
        return Assignment::from_values(values);
    }
    if rng.below(4) == 0 {
        for (h, v) in values.iter_mut().enumerate() {
            *v = rng.below(l.holes.domain(h as u32) as usize) as u64;
        }
    } else {
        let h = rng.below(n);
        values[h] = rng.below(l.holes.domain(h as u32) as usize) as u64;
    }
    Assignment::from_values(values)
}

/// The two outcomes came from bit-identical artifacts driven through
/// the same deterministic sequential search, so everything observable
/// must match (reseal bookkeeping counters excepted).
fn assert_same_search(a: &CheckOutcome, b: &CheckOutcome, label: &str) {
    assert_eq!(a.stats.states, b.stats.states, "{label}: states");
    assert_eq!(
        a.stats.transitions, b.stats.transitions,
        "{label}: transitions"
    );
    assert_eq!(
        a.stats.terminal_states, b.stats.terminal_states,
        "{label}: terminal states"
    );
    match (&a.verdict, &b.verdict) {
        (Verdict::Pass, Verdict::Pass) => {}
        (Verdict::Fail(ca), Verdict::Fail(cb)) => {
            assert_eq!(ca.steps, cb.steps, "{label}: cex traces");
            assert_eq!(ca.schedule, cb.schedule, "{label}: cex schedules");
        }
        (Verdict::Unknown(wa), Verdict::Unknown(wb)) => assert_eq!(wa, wb, "{label}"),
        (va, vb) => panic!("{label}: fresh {va:?}, resealed {vb:?}"),
    }
}

/// Parallel searches race on visit order, so two runs of even the
/// same artifact need not explore identically on a failing candidate.
/// Passing state counts are still deterministic (the explored graph is
/// a function of the artifact), and any counterexample must be real.
fn assert_equiv_parallel(
    l: &Lowered,
    cand: &Assignment,
    fresh: &CheckOutcome,
    resealed: &CheckOutcome,
    label: &str,
) {
    match (&fresh.verdict, &resealed.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            assert_eq!(
                fresh.stats.states, resealed.stats.states,
                "{label}: passing state counts"
            );
        }
        (Verdict::Fail(_) | Verdict::Unknown(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, cand),
                "{label}: resealed parallel cex does not refute candidate"
            );
        }
        (Verdict::Fail(_) | Verdict::Unknown(_), Verdict::Unknown(_)) => {}
        (va, vb) => panic!("{label}: fresh {va:?}, resealed {vb:?}"),
    }
}

/// Walk `steps` candidates, resealing each from the previous artifact;
/// every artifact must be structurally identical to a fresh seal, and
/// periodically both are swept to confirm the searches agree.
fn walk(l: &Lowered, steps: usize, rng: &mut Rng, label: &str) {
    let mut cand = l.holes.identity_assignment();
    let mut prev = CompiledProgram::compile(l, &cand);
    for step in 0..steps {
        cand = walk_step(l, &cand, rng);
        let resealed = CompiledProgram::reseal(&prev, l, &cand);
        let fresh = CompiledProgram::compile(l, &cand);
        assert!(
            resealed.artifact_eq(&fresh),
            "{label} step {step}: resealed artifact differs from fresh seal"
        );

        // Sweep both artifacts on a subset of steps: the sequential
        // searches must be indistinguishable with the reductions off
        // and on; the parallel ones verdict-equivalent.
        if step % 4 == 0 {
            for (por, symmetry) in [(false, false), (true, true)] {
                let lim = limits(por, symmetry);
                let tag = format!("{label} step {step} por={por} sym={symmetry}");
                let a = check_compiled(&fresh, &lim);
                let b = check_compiled(&resealed, &lim);
                assert_same_search(&a, &b, &tag);
                for threads in [2usize, 4] {
                    let pa = check_parallel_compiled(&fresh, &lim, threads);
                    let pb = check_parallel_compiled(&resealed, &lim, threads);
                    assert_equiv_parallel(l, &cand, &pa, &pb, &format!("{tag} threads={threads}"));
                }
            }
        }
        prev = resealed;
    }
}

#[test]
fn reseal_matches_fresh_seal_across_suite() {
    // One run per distinct benchmark keeps the test tractable; the
    // generated sources differ only in workload within a benchmark.
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(53);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        walk(&l, 12, &mut rng, run.benchmark);
    }
}

#[test]
fn reseal_matches_fresh_seal_on_small_programs() {
    let programs = [
        // Hole-guarded branching: a flip swaps which arm survives
        // folding, so the dirty worker's code genuinely changes.
        "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int old = AtomicReadAndIncr(g); }
                 else { g = g + 1; }
             }
             assert g == 2;
         }",
        // Hole-indexed array writes: a flip moves the sharpened
        // footprint cell, so the POR masks must be rebuilt.
        "int[4] a;
         harness void main() {
             fork (i; 2) { a[??(2) + i] = 1; }
             assert a[0] >= 0;
         }",
        // Main-scope hole read by the workers through a hoisted
        // global: the workers carry no holes and stay clean across
        // every flip.
        "int g;
         harness void main() {
             int x = ??(3);
             fork (i; 2) { g = g + x; }
             assert g >= 0;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(59);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        walk(&l, 16, &mut rng, &format!("program {px}"));
    }
}

/// Reseal must also be an identity when the candidate does not move:
/// every thread, both tables and the footprints are shared by
/// reference, and the sweep still matches.
#[test]
fn reseal_with_unchanged_candidate_is_free_and_identical() {
    let mut seen = std::collections::HashSet::new();
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        let cand = l.holes.identity_assignment();
        let cp = CompiledProgram::compile(&l, &cand);
        let rs = CompiledProgram::reseal(&cp, &l, &cand);
        assert!(rs.artifact_eq(&cp), "{}: identity reseal", run.benchmark);
        assert_eq!(
            rs.threads_reused(),
            l.workers.len() as u64 + 2,
            "{}: all threads (prologue + workers + epilogue) must be reused",
            run.benchmark
        );
        let a = check_compiled(&cp, &limits(true, true));
        let b = check_compiled(&rs, &limits(true, true));
        assert_same_search(&a, &b, run.benchmark);
    }
}
