//! Soundness properties of the CEGIS loop, checked against brute
//! force on small candidate spaces:
//!
//! * progress: every counterexample trace refutes the candidate that
//!   produced it (otherwise the loop would cycle);
//! * soundness of "yes": a resolved candidate passes the model checker;
//! * soundness of "NO": when the synthesizer answers unresolvable,
//!   exhaustive enumeration confirms every candidate fails;
//! * under-approximation: observations never eliminate a candidate
//!   that the checker accepts.

use psketch_repro::core::{Options, Synthesis};
use psketch_repro::exec::check;
use psketch_repro::ir::{Assignment, HoleTable, Lowered};
use psketch_repro::symbolic::synth::{trace_reproduces, Synthesizer};

/// Enumerates every assignment of a (small) hole table.
fn enumerate_assignments(table: &HoleTable) -> Vec<Assignment> {
    let mut out = vec![vec![]];
    for h in 0..table.num_holes() {
        let d = table.domain(h as u32);
        let mut next = Vec::new();
        for prefix in &out {
            for v in 0..d {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out.into_iter().map(Assignment::from_values).collect()
}

/// True when `a` satisfies the sketch's static constraints (reorder
/// permutation-ness), via concrete evaluation.
fn satisfies_constraints(l: &Lowered, a: &Assignment) -> bool {
    use psketch_repro::lang::ast::{BinOp, Expr};
    fn eval(e: &Expr, a: &Assignment) -> i64 {
        match e {
            Expr::HoleRef(h, _, _) => a.value(*h) as i64,
            Expr::Int(v, _) => *v,
            Expr::Binary(op, x, y, _) => {
                let (x, y) = (eval(x, a), eval(y, a));
                match op {
                    BinOp::Ne => i64::from(x != y),
                    BinOp::Eq => i64::from(x == y),
                    BinOp::And => i64::from(x != 0 && y != 0),
                    BinOp::Or => i64::from(x != 0 || y != 0),
                    _ => panic!("unexpected constraint op"),
                }
            }
            other => panic!("unexpected constraint expr {other:?}"),
        }
    }
    l.holes.constraints().iter().all(|c| eval(c, a) != 0)
}

/// Runs brute-force ground truth vs. the CEGIS answer on one sketch.
fn cross_validate(src: &str) {
    let opts = Options::default();
    let s = Synthesis::new(src, opts).unwrap_or_else(|e| panic!("{e}"));
    let l = s.lowered();
    assert!(
        l.holes.candidate_space() <= 4096,
        "keep cross-validation spaces small"
    );

    // Ground truth by enumeration.
    let all = enumerate_assignments(&l.holes);
    let correct: Vec<&Assignment> = all
        .iter()
        .filter(|a| satisfies_constraints(l, a) && check(l, a).is_ok())
        .collect();

    // CEGIS with per-iteration progress checks.
    let mut synth = Synthesizer::new(l);
    let mut resolved = None;
    for _ in 0..200 {
        match synth.next_candidate() {
            None => break,
            Some(cand) => {
                let out = check(l, &cand);
                match out.counterexample() {
                    None => {
                        resolved = Some(cand);
                        break;
                    }
                    Some(cex) => {
                        assert!(
                            trace_reproduces(l, cex, &cand),
                            "trace fails to refute its own candidate {cand} in {src}"
                        );
                        synth.add_trace(cex);
                    }
                }
            }
        }
    }
    match (&resolved, correct.is_empty()) {
        (Some(cand), false) => {
            assert!(
                check(l, cand).is_ok(),
                "CEGIS returned a bad candidate for {src}"
            );
        }
        (None, true) => {} // both say unresolvable
        (Some(cand), true) => {
            panic!("CEGIS resolved {cand} but enumeration found no correct candidate:\n{src}")
        }
        (None, false) => {
            panic!(
                "CEGIS said NO but {} correct candidate(s) exist (e.g. {}):\n{src}",
                correct.len(),
                correct[0]
            )
        }
    }
}

#[test]
fn cross_validation_constants() {
    cross_validate("int g; harness void main() { g = ??(3); assert g == 6; }");
    cross_validate("int g; harness void main() { g = ??(2); assert g == 9; }"); // NO
    cross_validate("int g; harness void main() { g = ??(2) + ??(2); assert g == 5 && g > 4; }");
}

#[test]
fn cross_validation_reorder() {
    cross_validate(
        "int g;
         harness void main() {
             reorder { g = g + 1; g = g * 2; g = g + 3; }
             assert g == 5;
         }",
    );
    // (0+1)*2+3 = 5 exists; also check an unsatisfiable target.
    cross_validate(
        "int g;
         harness void main() {
             reorder { g = g + 1; g = g * 2; }
             assert g == 7;
         }",
    );
}

#[test]
fn cross_validation_concurrent_race() {
    cross_validate(
        "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int t = g; g = t + 1; }
                 else { int old = AtomicReadAndIncr(g); }
             }
             assert g == 2;
         }",
    );
}

#[test]
fn cross_validation_conditional_atomics() {
    cross_validate(
        "int turn; int done0; int done1;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) {
                     done0 = 1;
                     atomic { turn = ??(1); }
                 } else {
                     atomic (turn == 1);
                     done1 = done0 + 1;
                 }
             }
             assert done1 == 2;
         }",
    );
}

#[test]
fn cross_validation_choice_locations() {
    cross_validate(
        "struct E { E next; int v; }
         E a; E b;
         harness void main() {
             a = new E(null, 1);
             b = new E(null, 2);
             fork (i; 2) {
                 int old = AtomicReadAndIncr({| (a|b).v |});
             }
             assert a.v == 3 || b.v == 4;
         }",
    );
}

#[test]
fn cross_validation_deadlocks() {
    // Only matching lock orders avoid deadlock.
    cross_validate(
        "struct Lock { int owner = -1; }
         Lock x; Lock y; int g;
         void lock(Lock l) { atomic (l.owner == -1) { l.owner = pid(); } }
         void unlock(Lock l) { l.owner = -1; }
         harness void main() {
             x = new Lock(); y = new Lock();
             fork (i; 2) {
                 if (??(1) == 0) {
                     if (i == 0) { lock(x); lock(y); } else { lock(y); lock(x); }
                 } else { lock(x); lock(y); }
                 g = g + 1;
                 unlock(y); unlock(x);
             }
             assert g == 2;
         }",
    );
}

#[test]
fn sequential_equivalence_cross_validation() {
    // Sequential mode ground truth: enumerate holes, verify by SAT.
    let src = "int s(int x) { return x * 4; }
               int f(int x) implements s { return x * ??(3); }";
    let synth = Synthesis::new(src, Options::default()).unwrap();
    let l = synth.lowered();
    let good: Vec<Assignment> = enumerate_assignments(&l.holes)
        .into_iter()
        .filter(|a| psketch_repro::symbolic::verify_sequential(l, a).is_none())
        .collect();
    assert_eq!(good.len(), 1);
    assert_eq!(good[0].value(0), 4);
    let out = synth.run();
    assert_eq!(out.resolution.unwrap().assignment.value(0), 4);
}

#[test]
fn unknown_is_not_reported_as_no() {
    // With a tiny state budget the checker returns Unknown; the driver
    // must not claim definite unresolvability.
    let opts = Options {
        max_states: 3,
        max_iterations: 5,
        ..Options::default()
    };
    let out = Synthesis::new(
        "int g;
         harness void main() {
             fork (i; 3) { g = g + 1; g = g + 1; }
             assert g >= 0;
         }",
        opts,
    )
    .unwrap()
    .run();
    assert!(!out.resolved());
    assert!(!out.definitely_unresolvable, "budget exhaustion is not NO");
}
