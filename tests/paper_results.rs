//! Reproduction of the paper's headline results on reduced workloads
//! (fast enough for debug-mode CI). The full Figure 9 matrix runs via
//! `cargo run --release -p psketch-suite --bin fig9` and the
//! `fig9_cegis` Criterion bench.

use psketch_repro::core::{Config, Options, Synthesis};
use psketch_repro::suite::barrier::{barrier_source, BarrierVariant};
use psketch_repro::suite::dinphilo::{dinphilo_source, PhiloVariant};
use psketch_repro::suite::queue::{queue_source, DequeueVariant, EnqueueVariant};
use psketch_repro::suite::set::{set_source, SetVariant};
use psketch_repro::suite::workload::Workload;

fn queue_options(w: &Workload) -> Options {
    Options {
        config: Config {
            unroll: w.total_inserts() + 2,
            pool: w.total_inserts() + 2,
            ..Config::default()
        },
        ..Options::default()
    }
}

#[test]
fn figure2_enqueue_synthesis() {
    // §2: the restricted Enqueue sketch resolves to Figure 2 — swap
    // the tail first, then link.
    let w = Workload::parse("ed(e|d)").unwrap();
    let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::Given, &w);
    let s = Synthesis::new(&src, queue_options(&w)).unwrap();
    assert_eq!(s.candidate_space(), 4, "Table 1: queueE1 has |C| = 4");
    let out = s.run();
    let r = out.resolution.expect("queueE1 resolves");
    let enq = s.resolve_function("Enqueue", &r.assignment).unwrap();
    let swap = enq
        .find("AtomicSwap(tail, newEntry)")
        .expect("uses the swap");
    let link = enq.find("tmp.next = newEntry").expect("links the node");
    assert!(swap < link, "Figure 2 order:\n{enq}");
}

#[test]
fn figure4_dequeue_synthesis() {
    // §8.2.1: the soup Dequeue resolves into a working taken-marking
    // dequeue (Figure 4 family).
    let w = Workload::parse("ed(e|d)").unwrap();
    let src = queue_source(EnqueueVariant::Restricted, DequeueVariant::SketchSoup, &w);
    let s = Synthesis::new(&src, queue_options(&w)).unwrap();
    let out = s.run();
    let r = out.resolution.expect("queueDE1 resolves");
    let deq = s.resolve_function("Dequeue", &r.assignment).unwrap();
    // The synthesized dequeue must read through prevHead and take via
    // the atomic swap.
    assert!(deq.contains("prevHead"), "{deq}");
    assert!(deq.contains("AtomicSwap(tmp.taken, 1)"), "{deq}");
}

#[test]
fn figure3_sketch_resolves() {
    // The 4-candidate Figure 3 dequeue sketch.
    let w = Workload::parse("ed(e|d)").unwrap();
    let src = queue_source(
        EnqueueVariant::Restricted,
        DequeueVariant::SketchAdvance,
        &w,
    );
    let s = Synthesis::new(&src, queue_options(&w)).unwrap();
    let out = s.run();
    assert!(out.resolved(), "Figure 3 sketch resolves");
}

#[test]
fn barrier_restricted_resolves() {
    let src = barrier_source(BarrierVariant::Restricted, 2, 2);
    let opts = Options {
        config: Config {
            hole_width: 2,
            unroll: 4,
            pool: 2,
            ..Config::default()
        },
        ..Options::default()
    };
    let out = Synthesis::new(&src, opts).unwrap().run();
    assert!(out.resolved(), "barrier1 resolves");
}

#[test]
fn lazyset_answers_match_paper() {
    // §8.2.4: one lock is NOT enough when adds and removes contend
    // (NO), but is enough when removes never race the adds (yes).
    let opts = |w: &Workload| Options {
        config: Config {
            unroll: w.total_inserts() + 3,
            pool: w.total_inserts() + 3,
            ..Config::default()
        },
        ..Options::default()
    };
    let w_no = Workload::parse("ar(ar|ar)").unwrap();
    let out = Synthesis::new(&set_source(SetVariant::Lazy, &w_no), opts(&w_no))
        .unwrap()
        .run();
    assert!(
        !out.resolved() && out.definitely_unresolvable,
        "mixed adds/removes must answer NO"
    );

    let w_yes = Workload::parse("ar(aa|rr)").unwrap();
    let out = Synthesis::new(&set_source(SetVariant::Lazy, &w_yes), opts(&w_yes))
        .unwrap()
        .run();
    assert!(out.resolved(), "segregated adds/removes must resolve");
}

#[test]
fn dining_philosophers_policy_is_deadlock_free() {
    let src = dinphilo_source(PhiloVariant::Sketch, 3, 1);
    let opts = Options {
        config: Config {
            hole_width: 3,
            unroll: 4,
            pool: 2,
            ..Config::default()
        },
        ..Options::default()
    };
    let s = Synthesis::new(&src, opts).unwrap();
    let out = s.run();
    let r = out.resolution.expect("a policy exists");
    // The policy must break the symmetry: it cannot give all
    // philosophers the same first chopstick side, which the constant
    // alternatives (`true`, `false`) would.
    let eat = s.resolve_function("eat", &r.assignment).unwrap();
    assert!(
        !eat.contains("if (true)") && !eat.contains("if (false)"),
        "symmetric policies deadlock:\n{eat}"
    );
}

#[test]
#[ignore = "runs the full 26-row Figure 9 matrix; use --ignored (release recommended)"]
fn full_figure9_matrix_agrees_with_paper() {
    for run in psketch_repro::suite::figure9_runs() {
        let s = Synthesis::new(&run.source, run.options.clone())
            .unwrap_or_else(|e| panic!("{} [{}]: {e}", run.benchmark, run.test));
        let out = s.run();
        assert_eq!(
            out.resolved(),
            run.expected_resolvable,
            "{} [{}] diverged from the paper",
            run.benchmark,
            run.test
        );
    }
}
