//! Differential testing of the compile-once candidate layer against
//! the interpreted undo engine and the clone-per-transition reference
//! engine, across the example suite.
//!
//! A [`CompiledProgram`] substitutes the candidate's hole values,
//! constant-folds guards and operands, and flattens each worker into a
//! dense pc-indexed micro-op array — but it must be *observationally
//! identical* to interpreting the `(Lowered, Assignment)` pair it was
//! compiled from. With partial-order reduction off, both engines are
//! deterministic depth-first searches over the same canonical state
//! set in the same worker order, so the comparison is exact: identical
//! verdicts, state and transition counts, and counterexample
//! schedules, with or without symmetry reduction (the symmetry classes
//! are computed from the original program, so the canonical
//! fingerprint function is shared too).
//!
//! With reduction **on** the compiled artifact carries
//! candidate-sharpened footprint masks: folded hole values may resolve
//! fork-indexed cells the static analysis had to treat as
//! whole-array. Sharper masks can legally change which ample sets are
//! chosen, so the contract weakens to verdict equivalence plus
//! cex-replays — except when the artifact reports zero sharpened
//! masks, in which case the tables are identical and the searches must
//! match exactly. The sharpening's soundness side condition — every
//! specialized mask is a subset of its static counterpart — is checked
//! as a property over many random candidates.

use psketch_repro::exec::reference::check_ref_with_limit;
use psketch_repro::exec::{
    check_compiled, check_parallel_limits, check_with_limits, random_run, random_run_compiled,
    replay, replay_compiled, CheckOutcome, CompiledProgram, Interrupt, SearchLimits, Verdict,
};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_repro::symbolic::trace_reproduces;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized.
const MAX_STATES: usize = 10_000;

fn limits(por: bool, symmetry: bool, compile: bool) -> SearchLimits {
    SearchLimits {
        por,
        symmetry,
        compile,
        ..SearchLimits::states(MAX_STATES)
    }
}

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// The identity assignment plus `extra` random ones.
fn candidates(l: &Lowered, extra: usize, rng: &mut Rng) -> Vec<Assignment> {
    let mut out = vec![l.holes.identity_assignment()];
    for _ in 0..extra {
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        out.push(Assignment::from_values(values));
    }
    out
}

/// Exact equivalence: verdict, state/transition counts, and
/// counterexample step sequences and schedules all match.
fn assert_exact(a: &CheckOutcome, b: &CheckOutcome, label: &str) {
    assert_eq!(
        a.stats.states, b.stats.states,
        "{label}: state counts differ"
    );
    assert_eq!(
        a.stats.transitions, b.stats.transitions,
        "{label}: transition counts differ"
    );
    match (&a.verdict, &b.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            assert_eq!(a.stats.terminal_states, b.stats.terminal_states, "{label}");
        }
        (Verdict::Fail(ca), Verdict::Fail(cb)) => {
            assert_eq!(ca.steps, cb.steps, "{label}: counterexample traces differ");
            assert_eq!(
                ca.schedule, cb.schedule,
                "{label}: counterexample schedules differ"
            );
            assert_eq!(
                ca.failure.kind, cb.failure.kind,
                "{label}: failure kinds differ"
            );
        }
        (Verdict::Unknown(wa), Verdict::Unknown(wb)) => {
            assert_eq!(*wa, Interrupt::StateLimit, "{label}: no deadline installed");
            assert_eq!(wa, wb, "{label}");
        }
        (va, vb) => panic!("{label}: interpreted verdict {va:?}, compiled verdict {vb:?}"),
    }
}

/// Verdict-level equivalence for configurations where the compiled
/// search may legitimately explore a different (still sound) subgraph.
fn assert_equiv(l: &Lowered, a: &Assignment, base: &Verdict, got: &CheckOutcome, label: &str) {
    match (base, &got.verdict) {
        (Verdict::Pass, Verdict::Pass) => {}
        (Verdict::Pass, v) => panic!("{label}: baseline passes, compiled {v:?}"),
        (Verdict::Fail(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, a),
                "{label}: compiled cex does not refute candidate"
            );
        }
        (Verdict::Fail(_), v) => panic!("{label}: baseline fails, compiled {v:?}"),
        (Verdict::Unknown(why), v) => {
            assert_eq!(*why, Interrupt::StateLimit, "{label}");
            match v {
                Verdict::Fail(cex) => {
                    assert!(trace_reproduces(l, cex, a), "{label}: invalid compiled cex");
                }
                Verdict::Unknown(w) => assert_eq!(*w, Interrupt::StateLimit, "{label}"),
                // A state-limited baseline cannot certify a pass, but a
                // *reduced* compiled search visits fewer states and may
                // legitimately finish under the limit.
                Verdict::Pass => {}
            }
        }
    }
}

fn compare(l: &Lowered, a: &Assignment, label: &str) {
    let cp = CompiledProgram::compile(l, a);
    assert!(
        cp.footprint_refines_static(),
        "{label}: sharpened masks must refine the static analysis"
    );

    // POR off, symmetry off/on: interpreted vs compiled (via the
    // SearchLimits flag and via the artifact directly) are the same
    // deterministic DFS — everything matches exactly.
    for symmetry in [false, true] {
        let tag = format!("{label} sym={symmetry}");
        let interp = check_with_limits(l, a, &limits(false, symmetry, false));
        assert_eq!(
            interp.stats.compile_us, 0,
            "{tag}: interpreter path must not compile"
        );
        let flagged = check_with_limits(l, a, &limits(false, symmetry, true));
        let direct = check_compiled(&cp, &limits(false, symmetry, true));
        assert_exact(&interp, &flagged, &format!("{tag} (flag)"));
        assert_exact(&interp, &direct, &format!("{tag} (artifact)"));
    }

    // And against the reference engine, which never compiles.
    let interp = check_with_limits(l, a, &limits(false, false, false));
    let reference = check_ref_with_limit(l, a, MAX_STATES);
    let direct = check_compiled(&cp, &limits(false, false, true));
    assert_exact(&reference, &direct, &format!("{label} (reference)"));

    // POR on: sharper masks may pick different ample sets, so the
    // contract is verdict equivalence — unless nothing was sharpened,
    // in which case the tables coincide and the searches must too.
    let interp_por = check_with_limits(l, a, &limits(true, false, false));
    let direct_por = check_compiled(&cp, &limits(true, false, true));
    if cp.sharpened_masks() == 0 {
        assert_exact(
            &interp_por,
            &direct_por,
            &format!("{label} por=on unsharpened"),
        );
    } else {
        assert_equiv(
            l,
            a,
            &interp_por.verdict,
            &direct_por,
            &format!("{label} por=on"),
        );
    }
    // Either way the reduced compiled search preserves the full
    // search's verdict.
    assert_equiv(
        l,
        a,
        &interp.verdict,
        &direct_por,
        &format!("{label} por=on vs full"),
    );

    // 2 and 4 checker threads on the compiled path: verdicts agree
    // with the sequential compiled baseline and passing state counts
    // match it exactly (the explored graph is a deterministic function
    // of the artifact, only the visit order differs).
    for threads in [2usize, 4] {
        for (por, base) in [(false, &direct), (true, &direct_por)] {
            let par = check_parallel_limits(l, a, &limits(por, false, true), threads);
            let tag = format!("{label} threads={threads} por={por}");
            match (&base.verdict, &par.verdict) {
                (Verdict::Pass, Verdict::Pass) => {
                    assert_eq!(base.stats.states, par.stats.states, "{tag}: state counts");
                }
                (Verdict::Fail(_), Verdict::Fail(cex)) => {
                    assert!(trace_reproduces(l, cex, a), "{tag}: invalid parallel cex");
                }
                (Verdict::Unknown(_), Verdict::Fail(cex)) => {
                    assert!(trace_reproduces(l, cex, a), "{tag}: invalid parallel cex");
                }
                (Verdict::Unknown(_), Verdict::Unknown(w)) => {
                    assert_eq!(*w, Interrupt::StateLimit, "{tag}");
                }
                (b, p) => panic!("{tag}: sequential {b:?}, parallel {p:?}"),
            }
        }
    }

    // Replay: any counterexample schedule found by the interpreted
    // search must replay to the same trace through the compiled
    // artifact, and vice versa.
    if let Verdict::Fail(cex) = &interp.verdict {
        let order: Vec<usize> = cex.schedule.iter().map(|&w| w as usize).collect();
        let ri = replay(l, a, &order).unwrap_or_else(|| panic!("{label}: interpreted replay"));
        let rc = replay_compiled(&cp, &order).unwrap_or_else(|| panic!("{label}: compiled replay"));
        assert_eq!(ri.steps, rc.steps, "{label}: replayed traces differ");
        assert_eq!(
            ri.failure.kind, rc.failure.kind,
            "{label}: replayed failure kinds differ"
        );
    }

    // Random sampling: same seed, same walk, same outcome.
    for seed in 0..8u64 {
        let wi = random_run(l, a, seed);
        let wc = random_run_compiled(&cp, seed);
        match (&wi, &wc) {
            (None, None) => {}
            (Some(ci), Some(cc)) => {
                assert_eq!(ci.steps, cc.steps, "{label} seed={seed}: sampled traces");
                assert_eq!(
                    ci.schedule, cc.schedule,
                    "{label} seed={seed}: sampled schedules"
                );
            }
            (i, c) => panic!("{label} seed={seed}: interpreted {i:?} vs compiled {c:?}"),
        }
    }
}

#[test]
fn compiled_engine_agrees_on_suite_sketches() {
    // One run per distinct benchmark keeps the test tractable; the
    // generated sources differ only in workload within a benchmark.
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(41);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("{} candidate {ix}", run.benchmark));
        }
    }
}

#[test]
fn compiled_engine_agrees_on_small_programs() {
    let programs = [
        // Deterministic pass.
        "int g;
         harness void main() {
             fork (i; 2) { int old = AtomicReadAndIncr(g); }
             assert g == 2;
         }",
        // Lost-update race: fails.
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        // Deadlock.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { atomic (a == 1) { } b = 1; }
                 else { atomic (b == 1) { } a = 1; }
             }
         }",
        // Sequential-only program: no fork, prologue does everything.
        "int g;
         harness void main() {
             g = g + 1;
             assert g == 1;
         }",
        // Hole-guarded branching: folding eliminates one arm.
        "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int old = AtomicReadAndIncr(g); }
                 else { g = g + 1; }
             }
             assert g == 2;
         }",
        // Hole-indexed array writes: the static footprint is the whole
        // array, the candidate-sharpened one a single cell.
        "int[4] a;
         harness void main() {
             fork (i; 2) { a[??(2) + i] = 1; }
             assert a[0] >= 0;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(43);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        for (ix, a) in candidates(&l, 3, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("program {px} candidate {ix}"));
        }
    }
}

/// Property: across every suite sketch and many random candidates,
/// the candidate-sharpened footprint masks always refine (are never
/// coarser than) the static hole-agnostic analysis — the soundness
/// side condition the sharpened POR tables depend on.
#[test]
fn sharpened_footprints_always_refine_static() {
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(47);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 8, &mut rng).iter().enumerate() {
            let cp = CompiledProgram::compile(&l, a);
            assert!(
                cp.footprint_refines_static(),
                "{} candidate {ix}: sharpened mask coarser than static",
                run.benchmark
            );
        }
    }
}

/// On the hole-indexed-array workload the sharpening must actually
/// fire: the artifact reports strictly-tightened masks, and the
/// reduced compiled search visits no more states than the reduced
/// interpreted search driven by the coarse static table.
#[test]
fn sharpening_fires_on_hole_indexed_cells() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int[4] a;
         harness void main() {
             fork (i; 2) { a[??(2) + i] = 1; }
             assert a[0] >= 0;
         }",
        &cfg,
    );
    let cand = l.holes.identity_assignment();
    let cp = CompiledProgram::compile(&l, &cand);
    assert!(
        cp.sharpened_masks() > 0,
        "folded hole must resolve the array index"
    );
    assert!(cp.footprint_refines_static());
    let interp = check_with_limits(&l, &cand, &limits(true, false, false));
    let comp = check_compiled(&cp, &limits(true, false, true));
    assert!(interp.is_ok() && comp.is_ok());
    assert!(
        comp.stats.states <= interp.stats.states,
        "sharper masks must not blow up the reduced search: {} > {}",
        comp.stats.states,
        interp.stats.states
    );
}
