//! Differential testing of the schedule-bank prescreen: prescreen-on
//! and prescreen-off CEGIS must be observationally equivalent.
//!
//! Prescreening replays real executions of the candidate under banked
//! schedules, so it can only *refute* — never accept — and every trace
//! it feeds back is a genuine execution of the refuted candidate. The
//! loop must therefore reach the identical verdict (resolved /
//! definitely unresolvable / unknown) at 1, 2 and 4 checker threads.
//!
//! The *assignments* need not be byte-identical when a sketch has
//! several correct resolutions: a prescreen hit feeds back a different
//! (equally valid) counterexample than the exhaustive search would
//! have, and CEGIS is free to converge on any member of the solution
//! set. What is guaranteed — and asserted here — is that each
//! configuration's winner survives the other configuration's full
//! verification, and that a sketch with a unique solution resolves to
//! that same assignment either way.

use psketch_repro::core::{Options, Synthesis};
use psketch_repro::ir::Assignment;
use psketch_repro::suite::figure9_runs;

/// One representative run per distinct benchmark, capped to the quick
/// rows so the whole matrix stays test-sized.
const QUICK: &[&str] = &["queueE1", "barrier1", "fineset1", "lazyset", "dinphilo"];

fn run_with(source: &str, options: Options) -> (Option<Vec<u64>>, bool) {
    let out = Synthesis::new(source, options).expect("lowers").run();
    (
        out.resolution.map(|r| r.assignment.values().to_vec()),
        out.definitely_unresolvable,
    )
}

#[test]
fn prescreen_on_off_agree_across_suite() {
    let mut seen = std::collections::HashSet::new();
    for run in figure9_runs() {
        if !QUICK.contains(&run.benchmark) || !seen.insert(run.benchmark) {
            continue;
        }
        // A prescreen-free checker for cross-verifying winners.
        let referee = Synthesis::new(
            &run.source,
            Options {
                prescreen: false,
                ..run.options.clone()
            },
        )
        .expect("lowers");
        for threads in [1usize, 2, 4] {
            let on = run_with(
                &run.source,
                Options {
                    threads,
                    prescreen: true,
                    ..run.options.clone()
                },
            );
            let off = run_with(
                &run.source,
                Options {
                    threads,
                    prescreen: false,
                    ..run.options.clone()
                },
            );
            let label = format!("{}/{} threads={threads}", run.benchmark, run.test);
            assert_eq!(
                on.0.is_some(),
                off.0.is_some(),
                "{label}: prescreen must not change resolvability"
            );
            assert_eq!(
                on.1, off.1,
                "{label}: prescreen must not change unresolvability proofs"
            );
            assert_eq!(on.0.is_some(), run.expected_resolvable, "{label}");
            // Every winner must survive the other configuration's
            // exhaustive verification: prescreen never accepts.
            for (who, values) in [("on", &on.0), ("off", &off.0)] {
                if let Some(values) = values {
                    let a = Assignment::from_values(values.clone());
                    assert!(
                        referee.verify_candidate(&a).is_none(),
                        "{label}: prescreen-{who} winner must verify exhaustively"
                    );
                }
            }
        }
    }
}

/// With a unique solution the converged assignment is pinned: both
/// configurations must land exactly on it.
#[test]
fn prescreen_preserves_unique_resolutions() {
    let src = "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int t = g; g = t + 1; }
                 else { int old = AtomicReadAndIncr(g); }
             }
             assert g == 2;
         }";
    for threads in [1usize, 2, 4] {
        let on = run_with(
            src,
            Options {
                threads,
                prescreen: true,
                ..Options::default()
            },
        );
        let off = run_with(
            src,
            Options {
                threads,
                prescreen: false,
                ..Options::default()
            },
        );
        assert_eq!(on, off, "threads={threads}");
        assert_eq!(on.0, Some(vec![1]), "threads={threads}");
    }
}
