//! Cross-crate integration: the full pipeline from source text to
//! synthesized implementation, exercising lang → ir → exec → symbolic
//! → core together.

use psketch_repro::core::{Mode, Options, Synthesis};
use psketch_repro::exec::{check, FailureKind};
use psketch_repro::ir::{desugar::desugar_program, lower::lower_program, Assignment, Config};

#[test]
fn parse_to_check_roundtrip() {
    let src = "
        struct Node { int v; Node next; }
        Node head;
        harness void main() {
            head = new Node(1, null);
            head.next = new Node(2, null);
            fork (i; 2) {
                int old = AtomicReadAndIncr(head.v);
            }
            assert head.v == 3;
            assert head.next.v == 2;
        }";
    let cfg = Config::default();
    let p = psketch_repro::lang::check_program(src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let out = check(&l, &l.holes.identity_assignment());
    assert!(out.is_ok(), "{:?}", out.counterexample());
    assert!(out.stats.states > 1);
}

#[test]
fn synthesis_modes_autodetect() {
    let concurrent = Synthesis::new(
        "int g; harness void main() { g = ??(2); assert g == 1; }",
        Options::default(),
    )
    .unwrap();
    assert_eq!(*concurrent.mode(), Mode::Harness);

    let sequential = Synthesis::new(
        "int s(int x) { return x + 1; } int f(int x) implements s { return x + ??(1); }",
        Options::default(),
    )
    .unwrap();
    assert!(matches!(sequential.mode(), Mode::Equivalence(n) if n == "f"));
    let out = sequential.run();
    assert_eq!(out.resolution.unwrap().assignment.value(0), 1);
}

#[test]
fn resolution_source_reparses_and_verifies() {
    // The printed resolution must itself be a valid, hole-free
    // program that passes verification.
    let src = "
        int g;
        harness void main() {
            reorder { g = g + 2; g = g * 3; }
            assert g == 6;
        }";
    let s = Synthesis::new(src, Options::default()).unwrap();
    let out = s.run();
    let r = out.resolution.expect("resolvable: (0+2)*3 = 6");
    let reparsed = psketch_repro::lang::check_program(&r.source)
        .unwrap_or_else(|e| panic!("resolved source invalid: {e}\n{}", r.source));
    let cfg = Config::default();
    let (sk2, holes2) = desugar_program(&reparsed, &cfg).unwrap();
    assert_eq!(holes2.num_holes(), 0, "resolution left holes behind");
    let l2 = lower_program(&sk2, holes2, &cfg).unwrap();
    let out2 = check(&l2, &Assignment::from_values(vec![]));
    assert!(
        out2.is_ok(),
        "resolved program fails: {:?}",
        out2.counterexample()
    );
}

#[test]
fn counterexamples_replay_deterministically() {
    let src = "
        int g;
        harness void main() {
            fork (i; 2) { int t = g; g = t + 1; }
            assert g == 2;
        }";
    let cfg = Config::default();
    let p = psketch_repro::lang::check_program(src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let a = l.holes.identity_assignment();
    let c1 = check(&l, &a);
    let c2 = check(&l, &a);
    let t1 = c1.counterexample().expect("racy");
    let t2 = c2.counterexample().expect("racy");
    assert_eq!(t1.steps, t2.steps, "checker must be deterministic");
    assert_eq!(t1.failure.kind, FailureKind::AssertFailed);
}

#[test]
fn every_failure_kind_is_reachable() {
    let cases: &[(&str, FailureKind)] = &[
        (
            "harness void main() { assert 1 == 2; }",
            FailureKind::AssertFailed,
        ),
        (
            "struct N { int v; } N g; harness void main() { int x = g.v; }",
            FailureKind::NullDeref,
        ),
        (
            "int[3] a; harness void main() { int i = 5; a[i] = 1; }",
            FailureKind::OutOfBounds,
        ),
        (
            "struct N { int v; }
             harness void main() {
                 int k = 0;
                 while (k < 20) { N n = new N(1); k = k + 1; }
             }",
            FailureKind::PoolExhausted,
        ),
        (
            "int g;
             harness void main() {
                 fork (i; 2) { atomic (g == 1) { } }
             }",
            FailureKind::Deadlock,
        ),
    ];
    for (src, want) in cases {
        let cfg = Config {
            unroll: 24,
            ..Config::default()
        };
        let p = psketch_repro::lang::check_program(src).unwrap();
        let (sk, holes) = desugar_program(&p, &cfg).unwrap();
        let l = lower_program(&sk, holes, &cfg).unwrap();
        let out = check(&l, &l.holes.identity_assignment());
        let cex = out
            .counterexample()
            .unwrap_or_else(|| panic!("{src} passed"));
        assert_eq!(cex.failure.kind, *want, "{src}");
    }
}

#[test]
fn statistics_are_consistent() {
    let s = Synthesis::new(
        "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int t = g; g = t + 1; }
                 else { int old = AtomicReadAndIncr(g); }
             }
             assert g == 2;
         }",
        Options::default(),
    )
    .unwrap();
    let out = s.run();
    assert!(out.resolved());
    let st = &out.stats;
    assert!(st.iterations >= 2, "needs at least one counterexample");
    assert!(st.total >= st.s_solve);
    assert!(st.total >= st.v_solve);
    assert!(st.states > 0);
    assert_eq!(st.candidate_space, 2);
}
