//! The paper's omitted benchmarks (§8.2: "we have sketched other data
//! structures that we omit here, including a doubly-linked list and
//! full version of the lazy list-based set"), reconstructed as
//! extensions, plus the multi-solution (autotuning) API of §8.3.1.

use psketch_repro::core::{Config, Options, Synthesis};
use psketch_repro::suite::dlist::{dlist_source, DlistVariant};
use psketch_repro::suite::set::{set_source, SetVariant};
use psketch_repro::suite::workload::Workload;

#[test]
fn doubly_linked_list_synthesis() {
    let src = dlist_source(DlistVariant::Sketch, 1);
    let opts = Options {
        config: Config {
            unroll: 6,
            pool: 6,
            ..Config::default()
        },
        ..Options::default()
    };
    let s = Synthesis::new(&src, opts).unwrap();
    let out = s.run();
    let r = out.resolution.expect("dlist resolves");
    let ins = s.resolve_function("insertAfter", &r.assignment).unwrap();
    // Safe publication: forward link before reachability.
    assert!(
        ins.find("n.next = q").unwrap() < ins.find("p.next = n").unwrap(),
        "{ins}"
    );
    // Backward consistency established too (epilogue enforces it).
    assert!(
        ins.contains("q.prev = n") || ins.contains("n.prev = p"),
        "{ins}"
    );
}

#[test]
fn two_lock_lazy_remove_resolves_where_one_lock_cannot() {
    // The same mixed add/remove workload answers NO with one lock
    // (paper §8.2.4) and resolves with the standard two locks — the
    // "full version" the paper mentions.
    let w = Workload::parse("ar(ar|ar)").unwrap();
    let opts = Options {
        config: Config {
            unroll: w.total_inserts() + 3,
            pool: w.total_inserts() + 3,
            ..Config::default()
        },
        ..Options::default()
    };

    let one_lock = Synthesis::new(&set_source(SetVariant::Lazy, &w), opts.clone())
        .unwrap()
        .run();
    assert!(one_lock.definitely_unresolvable, "one lock: NO");

    let two_locks = Synthesis::new(&set_source(SetVariant::LazyTwoLock, &w), opts)
        .unwrap()
        .run();
    assert!(two_locks.resolved(), "two locks: yes");
}

#[test]
fn enumerate_collects_reorder_freedom() {
    // Three independent writes to distinct globals: all 6 orders are
    // correct and enumerable.
    let s = Synthesis::new(
        "int a; int b; int c;
         harness void main() {
             reorder { a = 1; b = 2; c = 3; }
             assert a == 1 && b == 2 && c == 3;
         }",
        Options::default(),
    )
    .unwrap();
    let all = s.enumerate(100);
    assert_eq!(all.len(), 6);
    let unique: std::collections::HashSet<String> = all.iter().map(|r| r.source.clone()).collect();
    assert_eq!(unique.len(), 6, "resolutions must be distinct programs");
}

#[test]
fn exponential_encoding_reaches_every_permutation() {
    // Regression for a desugaring bug: insertion positions must range
    // over the expanded representation, or some permutations (e.g.
    // the identity) become unreachable. With three independent
    // writes, both encodings must reach all 3! orders.
    use psketch_repro::core::ReorderEncoding;
    let src = "int a; int b; int c;
         harness void main() {
             reorder { a = 1; b = 2; c = 3; }
             assert a == 1 && b == 2 && c == 3;
         }";
    for enc in [ReorderEncoding::Quadratic, ReorderEncoding::Exponential] {
        let opts = Options {
            config: Config {
                reorder: enc,
                ..Config::default()
            },
            ..Options::default()
        };
        let s = Synthesis::new(src, opts).unwrap();
        let all = s.enumerate(200);
        let distinct: std::collections::HashSet<String> =
            all.iter().map(|r| r.source.clone()).collect();
        assert_eq!(
            distinct.len(),
            6,
            "{enc:?} reaches {} of 6 permutations",
            distinct.len()
        );
    }
}

#[test]
fn hybrid_verifier_agrees_with_exhaustive() {
    use psketch_repro::core::VerifierKind;
    // Resolvable case: hybrid must find the same (verified) answer.
    let src = "int g;
         harness void main() {
             fork (i; 2) {
                 if (??(1) == 0) { int t = g; g = t + 1; }
                 else { int old = AtomicReadAndIncr(g); }
             }
             assert g == 2;
         }";
    for kind in [
        VerifierKind::Exhaustive,
        VerifierKind::Hybrid { samples: 8 },
    ] {
        let opts = Options {
            verifier: kind,
            ..Options::default()
        };
        let out = Synthesis::new(src, opts).unwrap().run();
        let r = out.resolution.unwrap_or_else(|| panic!("{kind:?} failed"));
        assert_eq!(r.assignment.value(0), 1, "{kind:?}");
    }
    // Unresolvable case: hybrid must still answer NO (the exhaustive
    // confirmation pass keeps it sound).
    let bad = "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }";
    let opts = Options {
        verifier: VerifierKind::Hybrid { samples: 4 },
        ..Options::default()
    };
    let out = Synthesis::new(bad, opts).unwrap().run();
    assert!(out.definitely_unresolvable);
}

#[test]
fn random_runs_are_real_executions() {
    use psketch_repro::exec::random_run;
    use psketch_repro::ir::{desugar::desugar_program, lower::lower_program};
    // A program where half the schedules fail: random runs must find a
    // failure within a few seeds, and every reported failure must also
    // be found by the exhaustive checker.
    let src = "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }";
    let cfg = psketch_repro::ir::Config::default();
    let p = psketch_repro::lang::check_program(src).unwrap();
    let (sk, holes) = desugar_program(&p, &cfg).unwrap();
    let l = lower_program(&sk, holes, &cfg).unwrap();
    let a = l.holes.identity_assignment();
    let found = (0..64).any(|seed| random_run(&l, &a, seed).is_some());
    assert!(found, "64 random schedules should hit the race");
    assert!(
        psketch_repro::exec::check(&l, &a)
            .counterexample()
            .is_some(),
        "exhaustive agrees"
    );
}

#[test]
fn reduction_toggle_preserves_verdicts() {
    use psketch_repro::ir::{desugar::desugar_program, lower::lower_program};
    let cases = [
        ("int g; harness void main() { fork (i; 2) { int t = g; g = t + 1; } assert g == 2; }", false),
        ("int g; harness void main() { fork (i; 2) { atomic { int t = g; g = t + 1; } } assert g == 2; }", true),
    ];
    for (src, expect_ok) in cases {
        for reduce in [true, false] {
            let cfg = Config {
                reduce_local_steps: reduce,
                ..Config::default()
            };
            let p = psketch_repro::lang::check_program(src).unwrap();
            let (sk, holes) = desugar_program(&p, &cfg).unwrap();
            let l = lower_program(&sk, holes, &cfg).unwrap();
            let a = l.holes.identity_assignment();
            let out = psketch_repro::exec::check(&l, &a);
            assert_eq!(out.is_ok(), expect_ok, "reduce={reduce}: {src}");
        }
    }
}
