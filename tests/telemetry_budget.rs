//! Integration tests for run telemetry and resource budgets: the JSON
//! run report round-trips through the bundled parser, budget-tripped
//! runs terminate with unknown and a structured reason, and the
//! human-readable report covers every new field.

use psketch_repro::core::telemetry::{BudgetKind, Json, RunReport};
use psketch_repro::core::{render_stats, render_tsv_row, Options, Synthesis, VerifierKind};
use std::time::Duration;

const RACY_SKETCH: &str = "int g;
     harness void main() {
         fork (i; 3) { int t = g; g = t + 1; }
         assert g == ??(2);
     }";

#[test]
fn run_report_json_round_trips() {
    let s = Synthesis::new(
        "int g; harness void main() { g = ??(3); assert g == 6; }",
        Options::default(),
    )
    .unwrap();
    let (out, report) = s.run_report();
    assert!(out.resolved());

    let text = report.to_json();
    let v = Json::parse(&text).expect("report must be valid JSON");

    // Every schema-stable key must be present.
    for key in [
        "schema",
        "resolvable",
        "resolution",
        "budget_trip",
        "iterations",
        "total_secs",
        "s_solve_secs",
        "s_model_secs",
        "v_solve_secs",
        "v_model_secs",
        "candidate_space",
        "log10_space",
        "states",
        "transitions",
        "terminal_states",
        "peak_memory",
        "synth_nodes",
        "sampled_refutations",
        "portfolio_width",
        "per_thread_states",
        "sat_decisions",
        "sat_propagations",
        "sat_conflicts",
        "sat_restarts",
        "records",
    ] {
        assert!(v.get(key).is_some(), "missing key '{key}'");
    }

    // Parsed values mirror the typed report.
    assert_eq!(
        v.get("schema").unwrap().as_f64(),
        Some(RunReport::SCHEMA as f64)
    );
    assert_eq!(v.get("resolvable").unwrap().as_str(), Some("yes"));
    assert_eq!(
        v.get("iterations").unwrap().as_f64(),
        Some(report.iterations as f64)
    );
    assert_eq!(
        v.get("states").unwrap().as_f64(),
        Some(report.states as f64)
    );
    assert_eq!(
        v.get("candidate_space").unwrap().as_str(),
        Some(report.candidate_space.as_str())
    );
    let recs = v.get("records").unwrap().as_arr().unwrap();
    assert_eq!(recs.len(), report.records.len());
    assert_eq!(recs.len(), out.stats.iterations);
    for (parsed, typed) in recs.iter().zip(&report.records) {
        assert_eq!(
            parsed.get("iteration").unwrap().as_f64(),
            Some(typed.iteration as f64)
        );
        assert_eq!(
            parsed.get("verdict").unwrap().as_str(),
            Some(typed.verdict.as_str())
        );
        let cand = parsed.get("candidate").unwrap().as_arr().unwrap();
        let cand: Vec<u64> = cand.iter().map(|j| j.as_f64().unwrap() as u64).collect();
        assert_eq!(cand, typed.candidate);
    }
    // The winning candidate is the last record.
    assert_eq!(
        recs.last().unwrap().get("verdict").unwrap().as_str(),
        Some("correct")
    );
}

#[test]
fn wall_budget_trips_to_unknown() {
    let out = Synthesis::new(
        RACY_SKETCH,
        Options {
            wall_timeout: Some(Duration::ZERO),
            ..Options::default()
        },
    )
    .unwrap()
    .run();
    assert!(!out.resolved());
    assert!(!out.definitely_unresolvable);
    let trip = out.budget_trip.expect("wall trip");
    assert_eq!(trip.budget, BudgetKind::Wall);
    assert_eq!(trip.budget.label(), "wall");
    assert!(!trip.phase.is_empty());
}

#[test]
fn state_budget_trips_to_unknown_with_partial_stats() {
    let (out, report) = Synthesis::new(
        RACY_SKETCH,
        Options {
            state_budget: Some(3),
            ..Options::default()
        },
    )
    .unwrap()
    .run_report();
    assert!(!out.resolved());
    let trip = out.budget_trip.expect("state trip");
    assert_eq!(trip.budget, BudgetKind::States);
    assert_eq!(trip.phase, "verify");
    // Partial stats survive the trip and respect the budget.
    assert!(out.stats.states <= 3);
    assert!(out.stats.iterations >= 1);
    assert!(!report.records.is_empty());
    assert!(report
        .records
        .iter()
        .any(|r| r.verdict.starts_with("unknown:")));
    // The report carries the trip too.
    let v = Json::parse(&report.to_json()).unwrap();
    let t = v.get("budget_trip").unwrap();
    assert_eq!(t.get("budget").unwrap().as_str(), Some("states"));
}

#[test]
fn wall_budget_trips_parallel_and_hybrid_verifiers() {
    for (threads, verifier) in [
        (4, VerifierKind::Exhaustive),
        (4, VerifierKind::Hybrid { samples: 8 }),
    ] {
        let out = Synthesis::new(
            RACY_SKETCH,
            Options {
                threads,
                portfolio: 2,
                verifier,
                wall_timeout: Some(Duration::ZERO),
                ..Options::default()
            },
        )
        .unwrap()
        .run();
        assert!(!out.resolved());
        let trip = out.budget_trip.expect("wall trip");
        assert_eq!(trip.budget, BudgetKind::Wall, "verifier={verifier:?}");
    }
}

#[test]
fn budgets_do_not_disturb_conclusive_runs() {
    let (out, report) = Synthesis::new(
        "int g; harness void main() { g = ??(2); assert g == 1; }",
        Options {
            wall_timeout: Some(Duration::from_secs(600)),
            state_budget: Some(1_000_000),
            ..Options::default()
        },
    )
    .unwrap()
    .run_report();
    assert!(out.resolved());
    assert!(out.budget_trip.is_none());
    assert_eq!(report.resolvable, "yes");
    assert_eq!(report.budget_trip, None);
}

#[test]
fn pretty_report_covers_new_fields() {
    let s = Synthesis::new(
        RACY_SKETCH,
        Options {
            threads: 2,
            ..Options::default()
        },
    )
    .unwrap();
    let out = s.run();
    let pretty = render_stats("demo", "t", &out);
    for needle in [
        "Resolvable:",
        "Itns:",
        "Ssolve",
        "peak mem",
        "transitions",
        "terminal",
        "sampled refutations",
        "decisions",
        "propagations",
        "conflicts",
        "restarts",
        "per-thread states",
        "portfolio width",
    ] {
        assert!(pretty.contains(needle), "missing '{needle}' in:\n{pretty}");
    }
    // Budget line appears exactly when a budget tripped.
    assert!(!pretty.contains("budget:"));
    let tripped = Synthesis::new(
        RACY_SKETCH,
        Options {
            state_budget: Some(2),
            ..Options::default()
        },
    )
    .unwrap()
    .run();
    let pretty = render_stats("demo", "t", &tripped);
    assert!(pretty.contains("budget: states tripped in verify"));
    // The TSV row stays 12 tab-separated fields with a mem column that
    // is a number or "n/a", never a silent 0 for an absent reading.
    let tsv = render_tsv_row("demo", "t", &out);
    let fields: Vec<&str> = tsv.split('\t').collect();
    assert_eq!(fields.len(), 12);
    let mem = fields[11];
    assert!(
        mem == "n/a" || mem.parse::<f64>().is_ok(),
        "mem column must be numeric or n/a, got '{mem}'"
    );
    if psketch_repro::core::mem::current_rss_bytes().is_some() {
        assert!(mem.parse::<f64>().unwrap() > 0.0);
    }
}
