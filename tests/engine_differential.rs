//! Differential testing of the zero-clone undo engine against the
//! clone-per-transition reference engine, across the example suite.
//!
//! For every suite sketch and a handful of candidates (the identity
//! assignment plus seeded random hole values), the reference engine
//! (`psketch_exec::reference`) and the undo engine must agree. At one
//! thread with partial-order reduction off, both engines are
//! deterministic depth-first searches over the same canonical state
//! set, so the comparison is exact: identical verdicts, state and
//! transition counts, and counterexample traces. At 2 and 4 threads
//! the parallel undo engine may find a *different* interleaving of a
//! failure, so the trace assertion weakens to "the counterexample
//! actually refutes the candidate" (symbolic replay reproduces the
//! failure) while verdicts and passing state counts stay exact.
//!
//! With reduction **on**, the undo engine explores a provably
//! sufficient subset of each state's enabled workers, so the contract
//! weakens to verdict equivalence: identical pass/fail classification
//! at 1, 2 and 4 threads, every counterexample still refutes the
//! candidate, and — whenever the full search completed — the reduced
//! search never visits more states than full expansion did.
//!
//! The shared-table test additionally audits the zero-copy artifact
//! contract: every checker spun up from a sealed [`CompiledProgram`]
//! — sequential or parallel — shares its tables by reference
//! (`table_clones == 0`), while the interpreted reduced paths own
//! their POR table (`table_clones == 1` per run that searches).

use psketch_repro::exec::reference::check_ref_with_limit;
use psketch_repro::exec::{
    check_compiled, check_parallel_compiled, check_parallel_limits, check_with_limits,
    CheckOutcome, CompiledProgram, Interrupt, SearchLimits, Verdict,
};
use psketch_repro::ir::{desugar, lower, Assignment, Lowered};
use psketch_repro::suite::figure9_runs;
use psketch_repro::symbolic::trace_reproduces;
use psketch_testutil::Rng;

/// Bounds each exploration so the whole suite stays test-sized. Both
/// engines dedup by canonical state identity, so (reduction off) they
/// reach the limit or finish under it on exactly the same searches.
const MAX_STATES: usize = 10_000;

fn limits(por: bool) -> SearchLimits {
    // Symmetry off: the exact-comparison contracts below count states
    // against the reference engine, which never canonicalizes.
    SearchLimits {
        por,
        symmetry: false,
        ..SearchLimits::states(MAX_STATES)
    }
}

fn sym_limits(symmetry: bool) -> SearchLimits {
    SearchLimits {
        por: false,
        symmetry,
        ..SearchLimits::states(MAX_STATES)
    }
}

fn lowered(source: &str, config: &psketch_repro::ir::Config) -> Lowered {
    let p = psketch_repro::lang::check_program(source).unwrap();
    let (sk, holes) = desugar::desugar_program(&p, config).unwrap();
    lower::lower_program(&sk, holes, config).unwrap()
}

/// The identity assignment plus `extra` random ones.
fn candidates(l: &Lowered, extra: usize, rng: &mut Rng) -> Vec<Assignment> {
    let mut out = vec![l.holes.identity_assignment()];
    for _ in 0..extra {
        let values = (0..l.holes.num_holes())
            .map(|h| rng.below(l.holes.domain(h as u32) as usize) as u64)
            .collect();
        out.push(Assignment::from_values(values));
    }
    out
}

fn compare(l: &Lowered, a: &Assignment, label: &str) {
    let old = check_ref_with_limit(l, a, MAX_STATES);

    // One thread, reduction off: both engines are deterministic DFS
    // over the same canonical state set in the same worker order, so
    // everything — verdict, counts, counterexample — must match
    // exactly.
    let new = check_with_limits(l, a, &limits(false));
    assert_eq!(
        old.stats.states, new.stats.states,
        "{label}: engines disagree on the state count"
    );
    assert_eq!(
        old.stats.transitions, new.stats.transitions,
        "{label}: engines disagree on the transition count"
    );
    match (&old.verdict, &new.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            assert_eq!(
                old.stats.terminal_states, new.stats.terminal_states,
                "{label}"
            );
        }
        (Verdict::Fail(oc), Verdict::Fail(nc)) => {
            assert_eq!(oc.steps, nc.steps, "{label}: counterexample traces differ");
            assert_eq!(
                oc.failure.kind, nc.failure.kind,
                "{label}: failure kinds differ"
            );
        }
        (Verdict::Unknown(ow), Verdict::Unknown(nw)) => {
            assert_eq!(*ow, Interrupt::StateLimit, "{label}: no deadline installed");
            assert_eq!(ow, nw, "{label}");
        }
        (o, n) => panic!("{label}: reference verdict {o:?}, undo engine verdict {n:?}"),
    }
    // A full-expansion run must never report reduction activity.
    assert_eq!(new.stats.por_ample_hits, 0, "{label}: por off yet active");
    assert_eq!(new.stats.states_pruned, 0, "{label}: por off yet pruning");

    // 2 and 4 threads, reduction off: the parallel undo engine against
    // the reference verdict. Failure interleavings may differ;
    // validity may not.
    for threads in [2usize, 4] {
        let par = check_parallel_limits(l, a, &limits(false), threads);
        check_against(l, a, &old.verdict, Some(old.stats.states), &par, {
            &format!("{label} threads={threads} por=off")
        });
    }

    // Reduction on, 1 thread: verdict equivalence against the full
    // search, plus the cost contract — when the full search completed,
    // the reduced one never visits more states.
    let por_seq = check_with_limits(l, a, &limits(true));
    match (&old.verdict, &por_seq.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            assert!(
                por_seq.stats.states <= old.stats.states,
                "{label}: reduction explored more states ({} > {})",
                por_seq.stats.states,
                old.stats.states
            );
        }
        (Verdict::Pass, v) => panic!("{label}: full search passes, reduced search {v:?}"),
        (Verdict::Fail(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, a),
                "{label}: reduced-search cex does not refute candidate"
            );
        }
        (Verdict::Fail(_), v) => panic!("{label}: full search fails, reduced search {v:?}"),
        // Full search hit the state limit: the reduced search visits a
        // subset of the reachable states, so it may legitimately
        // finish (either way) or hit the limit itself.
        (Verdict::Unknown(_), Verdict::Fail(cex)) => {
            assert!(trace_reproduces(l, cex, a), "{label}: invalid reduced cex");
        }
        (Verdict::Unknown(_), Verdict::Unknown(w)) => {
            assert_eq!(*w, Interrupt::StateLimit, "{label}");
        }
        (Verdict::Unknown(_), Verdict::Pass) => {}
    }
    if por_seq.stats.states_pruned > 0 {
        assert!(
            por_seq.stats.por_ample_hits > 0,
            "{label}: pruning without ample hits"
        );
    }

    // Reduction on, 2 and 4 threads: the ample set is a deterministic
    // function of the state, so the parallel reduced search explores
    // the same reduced graph as the sequential one — passing state
    // counts must match it exactly.
    for threads in [2usize, 4] {
        let par = check_parallel_limits(l, a, &limits(true), threads);
        check_against(l, a, &por_seq.verdict, Some(por_seq.stats.states), &par, {
            &format!("{label} threads={threads} por=on")
        });
    }
}

/// Parallel-vs-sequential rules shared by the reduced and full
/// configurations: verdicts agree, passing state counts match the
/// sequential baseline, counterexamples replay, and a search that hit
/// the state limit is never contradicted by a pass.
fn check_against(
    l: &Lowered,
    a: &Assignment,
    base: &Verdict,
    base_states: Option<usize>,
    par: &CheckOutcome,
    label: &str,
) {
    match (base, &par.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            if let Some(states) = base_states {
                assert_eq!(
                    states, par.stats.states,
                    "{label}: passing searches must agree on the state count"
                );
            }
        }
        (Verdict::Pass, v) => panic!("{label}: baseline passes, parallel {v:?}"),
        (Verdict::Fail(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, a),
                "{label}: parallel cex does not refute candidate"
            );
        }
        (Verdict::Fail(_), v) => panic!("{label}: baseline fails, parallel {v:?}"),
        (Verdict::Unknown(why), v) => {
            assert_eq!(*why, Interrupt::StateLimit, "{label}");
            // The parallel search explores in a different order, so
            // before hitting the shared limit it may legitimately
            // stumble on a (valid) failure — but never a pass.
            match v {
                Verdict::Fail(cex) => assert!(
                    trace_reproduces(l, cex, a),
                    "{label}: parallel cex does not refute candidate"
                ),
                Verdict::Unknown(pw) => {
                    assert_eq!(*pw, Interrupt::StateLimit, "{label}")
                }
                Verdict::Pass => panic!(
                    "{label}: baseline hit the state limit; a passing parallel \
                     run would mean the engines disagree on the reachable \
                     state count"
                ),
            }
        }
    }
}

/// Symmetry on vs off, 1/2/4 checker threads: identical verdicts,
/// every counterexample still refutes the candidate, and — whenever
/// the identity-canonicalization search completed — the symmetry-
/// reduced search visits a subset of its states (never more). The
/// canonical fingerprint is a deterministic function of the state, so
/// the parallel reduced search must match the sequential reduced
/// state count exactly on passing runs.
fn compare_symmetry(l: &Lowered, a: &Assignment, label: &str) {
    let off = check_with_limits(l, a, &sym_limits(false));
    let on = check_with_limits(l, a, &sym_limits(true));
    assert_eq!(
        off.stats.sym_collapses, 0,
        "{label}: symmetry off yet collapses reported"
    );
    match (&off.verdict, &on.verdict) {
        (Verdict::Pass, Verdict::Pass) => {
            assert!(
                on.stats.states <= off.stats.states,
                "{label}: symmetry explored more states ({} > {})",
                on.stats.states,
                off.stats.states
            );
        }
        (Verdict::Pass, v) => panic!("{label}: symmetry off passes, on {v:?}"),
        (Verdict::Fail(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, a),
                "{label}: symmetry-on cex does not refute candidate"
            );
        }
        (Verdict::Fail(_), v) => panic!("{label}: symmetry off fails, on {v:?}"),
        // Full search hit the state limit: the reduced search visits a
        // subset of the orbits, so it may legitimately finish first.
        (Verdict::Unknown(_), Verdict::Fail(cex)) => {
            assert!(trace_reproduces(l, cex, a), "{label}: invalid sym cex");
        }
        (Verdict::Unknown(_), Verdict::Unknown(w)) => {
            assert_eq!(*w, Interrupt::StateLimit, "{label}");
        }
        (Verdict::Unknown(_), Verdict::Pass) => {}
    }
    for threads in [2usize, 4] {
        let par = check_parallel_limits(l, a, &sym_limits(true), threads);
        check_against(l, a, &on.verdict, Some(on.stats.states), &par, {
            &format!("{label} threads={threads} symmetry=on")
        });
    }
    // Symmetry composes with the ample-set reduction: the combined
    // configuration (both defaults on) must preserve the verdict too.
    let both = check_with_limits(
        l,
        a,
        &SearchLimits {
            por: true,
            symmetry: true,
            ..SearchLimits::states(MAX_STATES)
        },
    );
    match (&off.verdict, &both.verdict) {
        (Verdict::Pass, Verdict::Pass) => {}
        (Verdict::Pass, v) => panic!("{label}: full search passes, por+sym {v:?}"),
        (Verdict::Fail(_), Verdict::Fail(cex)) | (Verdict::Unknown(_), Verdict::Fail(cex)) => {
            assert!(
                trace_reproduces(l, cex, a),
                "{label}: por+sym cex does not refute candidate"
            );
        }
        (Verdict::Fail(_), v) => panic!("{label}: full search fails, por+sym {v:?}"),
        (Verdict::Unknown(_), Verdict::Unknown(w)) => {
            assert_eq!(*w, Interrupt::StateLimit, "{label}");
        }
        (Verdict::Unknown(_), Verdict::Pass) => {}
    }
}

#[test]
fn symmetry_agrees_on_suite_sketches() {
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(29);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            compare_symmetry(&l, a, &format!("{} candidate {ix}", run.benchmark));
        }
    }
}

#[test]
fn symmetry_agrees_on_small_programs() {
    let programs = [
        // Symmetric lost-update race: fails, and the symmetric-state
        // collapse must not mask the failing interleaving.
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        // Symmetric and passing: the reduction's best case.
        "int g;
         harness void main() {
             fork (i; 3) { int old = AtomicReadAndIncr(g); }
             assert g == 3;
         }",
        // Fork-index-dependent branching: asymmetric, must fall back
        // to identity canonicalization and still agree.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { a = a + 1; } else { b = b + 1; }
             }
             assert a == 1 && b == 1;
         }",
        // pid() escapes into shared state: asymmetric.
        "int owner;
         harness void main() {
             fork (i; 2) { owner = pid(); }
             assert owner >= 1;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(31);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        for (ix, a) in candidates(&l, 3, &mut rng).iter().enumerate() {
            compare_symmetry(&l, a, &format!("program {px} candidate {ix}"));
        }
    }
}

/// On a genuinely symmetric workload the reduction must actually fire:
/// strictly fewer states than identity canonicalization, collapses
/// reported, same verdict.
#[test]
fn symmetry_collapses_symmetric_counter() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int g;
         harness void main() {
             fork (i; 3) { int t = g; g = t + 1; }
             assert g >= 1;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    let off = check_with_limits(&l, &a, &sym_limits(false));
    let on = check_with_limits(&l, &a, &sym_limits(true));
    assert!(off.is_ok() && on.is_ok());
    assert!(
        on.stats.states < off.stats.states,
        "symmetry did not collapse: {} vs {}",
        on.stats.states,
        off.stats.states
    );
    assert!(on.stats.sym_collapses > 0);
    assert_eq!(off.stats.sym_collapses, 0);
}

#[test]
fn engines_agree_on_suite_sketches() {
    // One run per distinct benchmark keeps the test tractable; the
    // generated sources differ only in workload within a benchmark.
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(13);
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 2, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("{} candidate {ix}", run.benchmark));
        }
    }
}

#[test]
fn engines_agree_on_small_programs() {
    let programs = [
        // Deterministic pass.
        "int g;
         harness void main() {
             fork (i; 2) { int old = AtomicReadAndIncr(g); }
             assert g == 2;
         }",
        // Lost-update race: fails.
        "int g;
         harness void main() {
             fork (i; 2) { int t = g; g = t + 1; }
             assert g == 2;
         }",
        // Deadlock.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { atomic (a == 1) { } b = 1; }
                 else { atomic (b == 1) { } a = 1; }
             }
         }",
        // Sequential-only program: no fork, prologue does everything.
        "int g;
         harness void main() {
             g = g + 1;
             assert g == 1;
         }",
        // Three threads, bigger interleaving space.
        "int g;
         harness void main() {
             fork (i; 3) { g = g + 1; g = g + 1; }
             assert g >= 2;
         }",
        // Disjoint per-thread cells: maximal independence, the
        // reduction's best case.
        "int a; int b;
         harness void main() {
             fork (i; 2) {
                 if (i == 0) { a = a + 1; a = a + 1; }
                 else { b = b + 1; b = b + 1; }
             }
             assert a == 2 && b == 2;
         }",
    ];
    let cfg = psketch_repro::ir::Config::default();
    let mut rng = Rng::new(17);
    for (px, src) in programs.iter().enumerate() {
        let l = lowered(src, &cfg);
        for (ix, a) in candidates(&l, 3, &mut rng).iter().enumerate() {
            compare(&l, a, &format!("program {px} candidate {ix}"));
        }
    }
}

/// On a workload with real independence the reduction must actually
/// fire: fewer states than full expansion, ample hits and pruned
/// expansions reported, same verdict.
#[test]
fn reduction_prunes_disjoint_updates() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int a; int b; int c;
         harness void main() {
             fork (i; 3) {
                 if (i == 0) { a = a + 1; a = a + 1; }
                 else { if (i == 1) { b = b + 1; b = b + 1; }
                        else { c = c + 1; c = c + 1; } }
             }
             assert a == 2 && b == 2 && c == 2;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    let full = check_with_limits(&l, &a, &limits(false));
    let red = check_with_limits(&l, &a, &limits(true));
    assert!(full.is_ok() && red.is_ok());
    assert!(
        red.stats.states < full.stats.states,
        "reduction did not prune: {} vs {}",
        red.stats.states,
        full.stats.states
    );
    assert!(red.stats.por_ample_hits > 0);
    assert!(red.stats.states_pruned > 0);
    assert_eq!(full.stats.por_ample_hits, 0);
}

/// A sealed artifact's tables (state layout, liveness, POR masks,
/// symmetry classes) live behind `Arc` and are shared by reference
/// with every checker spun up from it — sequential or parallel —
/// while the interpreted paths materialize an owned POR table per
/// run. `table_clones` audits exactly that: zero on every artifact
/// path, at least one on every interpreted reduced run. Sharing must
/// also be observationally free: with reduction off, a parallel run
/// over the shared artifact matches the interpreted sequential
/// baseline's verdict and passing state count, and any counterexample
/// schedule it finds still refutes the candidate.
#[test]
fn shared_tables_run_parallel_without_cloning() {
    let mut seen = std::collections::HashSet::new();
    let mut rng = Rng::new(19);
    let mut interpreted_clones = 0u64;
    for run in figure9_runs() {
        if !seen.insert(run.benchmark) {
            continue;
        }
        let l = lowered(&run.source, &run.options.config);
        for (ix, a) in candidates(&l, 1, &mut rng).iter().enumerate() {
            let label = format!("{} candidate {ix}", run.benchmark);
            let cp = CompiledProgram::compile(&l, a);
            let off = SearchLimits {
                por: false,
                symmetry: false,
                compile: true,
                ..SearchLimits::states(MAX_STATES)
            };
            let on = SearchLimits {
                por: true,
                ..off.clone()
            };

            // Reduction off: the shared-artifact parallel search
            // against the interpreted sequential baseline.
            let base = check_with_limits(
                &l,
                a,
                &SearchLimits {
                    compile: false,
                    ..off.clone()
                },
            );
            for threads in [2usize, 4] {
                let par = check_parallel_compiled(&cp, &off, threads);
                check_against(&l, a, &base.verdict, Some(base.stats.states), &par, {
                    &format!("{label} threads={threads} shared artifact")
                });
                assert_eq!(
                    par.stats.table_clones, 0,
                    "{label}: artifact path must not clone tables"
                );
            }

            // Every artifact-driven engine reports zero table clones…
            let comp_seq = check_compiled(&cp, &on);
            assert_eq!(comp_seq.stats.table_clones, 0, "{label}: sequential");
            let comp_par = check_parallel_compiled(&cp, &on, 2);
            assert_eq!(comp_par.stats.table_clones, 0, "{label}: parallel");

            // …and so does the default configuration, which seals the
            // candidate internally and checks through the artifact.
            let flagged = check_with_limits(&l, a, &on);
            assert_eq!(flagged.stats.table_clones, 0, "{label}: compile flag");

            // The interpreted reduced paths materialize their own
            // owned POR table, once per run (the reduction only
            // engages between 2 and 64 workers, and a candidate that
            // dies in the prologue never reaches the search).
            if (2..=64).contains(&l.workers.len()) {
                let int_on = SearchLimits {
                    compile: false,
                    ..on.clone()
                };
                let int_seq = check_with_limits(&l, a, &int_on);
                assert!(int_seq.stats.table_clones <= 1, "{label}: interpreted");
                let int_par = check_parallel_limits(&l, a, &int_on, 2);
                assert_eq!(
                    int_seq.stats.table_clones, int_par.stats.table_clones,
                    "{label}: sequential and parallel interpreted runs \
                     materialize the same tables"
                );
                if int_seq.stats.por_ample_hits + int_seq.stats.por_fallbacks > 0 {
                    assert_eq!(
                        int_seq.stats.table_clones, 1,
                        "{label}: a reduced interpreted search owns its table"
                    );
                }
                interpreted_clones += int_seq.stats.table_clones;
            }
        }
    }
    assert!(
        interpreted_clones > 0,
        "the interpreted paths must have materialized at least one table"
    );
}

/// The undo engine's accounting must reflect its zero-clone design:
/// a sequential search journals writes and never clones, while the
/// reference engine clones per transition and journals nothing.
#[test]
fn accounting_reflects_engine_design() {
    let cfg = psketch_repro::ir::Config::default();
    let l = lowered(
        "int g;
         harness void main() {
             fork (i; 2) { int old = AtomicReadAndIncr(g); }
             assert g == 2;
         }",
        &cfg,
    );
    let a = l.holes.identity_assignment();
    let new = check_with_limits(&l, &a, &limits(false));
    assert!(new.is_ok());
    assert!(new.stats.journal_writes > 0, "undo engine records writes");
    assert_eq!(
        new.stats.state_clones, 0,
        "sequential undo search never clones"
    );
    let old = check_ref_with_limit(&l, &a, MAX_STATES);
    assert!(old.is_ok());
    assert!(
        old.stats.state_clones >= old.stats.transitions as usize,
        "reference engine clones at least once per transition"
    );
}
