//! The paper's sequential SKETCH example (§3): a 4×4 matrix transpose
//! built from `shufps`-style shuffles, synthesized against the
//! executable specification with CEGIS over counterexample *inputs*.
//!
//! This is the "programming contest" problem from the paper: the
//! student fixed the two permutation stages and left the shuffle
//! sources and selectors unspecified. Our variant fixes the
//! destination slots (one per 4-wide store) and leaves 8 source starts
//! and 32 selector bits free — ~10^29 syntactic candidates.
//!
//! Run with: `cargo run --release --example transpose`

use psketch_core::{Options, Synthesis};
use std::fmt::Write as _;

fn build_sketch() -> String {
    let mut src = String::from("int[16] trans(int[16] M) {\n    int[16] T;\n");
    for i in 0..4 {
        for j in 0..4 {
            let _ = writeln!(src, "    T[{}] = M[{}];", 4 * i + j, 4 * j + i);
        }
    }
    src.push_str(
        r#"    return T;
}

int[4] shufps(int[16] x1, int s1, int[16] x2, int s2, int b0, int b1, int b2, int b3) {
    int[4] s;
    s[0] = x1[s1 + b0];
    s[1] = x1[s1 + b1];
    s[2] = x2[s2 + b2];
    s[3] = x2[s2 + b3];
    return s;
}

int[16] trans_sse(int[16] M) implements trans {
    int[16] S;
    int[16] T;
"#,
    );
    for k in 0..4 {
        let _ = writeln!(
            src,
            "    S[{}::4] = shufps(M, ??(2) * 4, M, ??(2) * 4, ??(2), ??(2), ??(2), ??(2));",
            4 * k
        );
    }
    for k in 0..4 {
        let _ = writeln!(
            src,
            "    T[{}::4] = shufps(S, ??(2) * 4, S, ??(2) * 4, ??(2), ??(2), ??(2), ??(2));",
            4 * k
        );
    }
    src.push_str("    return T;\n}\n");
    src
}

fn main() {
    let source = build_sketch();
    let synthesis = Synthesis::new(&source, Options::default()).expect("sketch compiles");
    println!(
        "trans_sse: |C| ≈ 10^{:.1} candidates, {} holes",
        synthesis.lowered().holes.log10_candidate_space(),
        synthesis.lowered().holes.num_holes()
    );
    println!("synthesizing against the executable spec (all 8-bit inputs)...\n");
    let outcome = synthesis.run();
    let resolution = outcome.resolution.expect("a shufps transpose exists");
    println!(
        "resolved in {} iterations, {:.2}s (the paper's laptop took 33 minutes)\n",
        outcome.stats.iterations,
        outcome.stats.total.as_secs_f64()
    );
    println!(
        "{}",
        synthesis
            .resolve_function("trans_sse", &resolution.assignment)
            .unwrap()
    );
}
