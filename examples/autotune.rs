//! Enumerate *all* correct completions and rank them — the paper's
//! autotuning workflow (§8.3.1: "one wishes to find all correct
//! solutions, then search these for an optimal one").
//!
//! The sketch reorders a lock acquisition, a read-modify-write of a
//! shared counter (split into two statements — statements execute
//! atomically, SPIN-style, so the race only exists when the read and
//! write are separate steps), a purely local computation, and the
//! release. Several orders are correct; they differ in how much work
//! sits inside the critical section. We enumerate every correct
//! candidate and score it by critical-section length, like an
//! autotuner would.
//!
//! Run with: `cargo run --release --example autotune`

use psketch_core::{Options, Synthesis};

fn critical_section_len(source: &str) -> usize {
    let lock = source.find("lock(lk)").unwrap_or(0);
    let unlock = source.find("unlock(lk)").unwrap_or(source.len());
    source[lock..unlock].lines().count()
}

fn main() {
    let sketch = r#"
        struct Lock { int owner = -1; }
        Lock lk;
        int shared;

        void lock(Lock l) { atomic (l.owner == -1) { l.owner = pid(); } }
        void unlock(Lock l) { assert l.owner == pid(); l.owner = -1; }

        void work() {
            int mine = 0;
            int t = 0;
            reorder {
                lock(lk);
                t = shared;
                shared = t + mine;
                unlock(lk);
                mine = 3 + 4;
            }
        }

        harness void main() {
            lk = new Lock();
            fork (i; 2) { work(); }
            assert shared == 14;
        }
    "#;

    let synthesis = Synthesis::new(sketch, Options::default()).expect("sketch compiles");
    println!(
        "enumerating correct completions of a {}-candidate space...\n",
        synthesis.candidate_space()
    );
    let mut solutions = synthesis.enumerate(50);
    assert!(!solutions.is_empty(), "at least one order is correct");

    solutions.sort_by_key(|r| {
        let body = synthesis
            .resolve_function("work", &r.assignment)
            .expect("work exists");
        critical_section_len(&body)
    });

    println!("found {} correct orderings:\n", solutions.len());
    for (rank, r) in solutions.iter().enumerate() {
        let body = synthesis.resolve_function("work", &r.assignment).unwrap();
        println!(
            "--- rank {} (critical section: {} lines) ---",
            rank + 1,
            critical_section_len(&body)
        );
        println!("{body}");
    }
    println!(
        "an autotuner would pick rank 1: the local computation `mine = 3 + 4` \
         stays outside the critical section."
    );
}
