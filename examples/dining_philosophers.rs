//! Synthesizing a deadlock-free chopstick-acquisition policy for the
//! dining philosophers (paper §8.2.5).
//!
//! The policy — which chopstick each philosopher grabs first, as an
//! expression of its index — is a generator hole; the release order is
//! a `reorder`. The verifier enforces deadlock freedom implicitly and
//! the bounded-liveness property that everyone eats `T` times.
//!
//! Run with: `cargo run --release --example dining_philosophers`

use psketch_core::{Config, Options, Synthesis};
use psketch_suite::dinphilo::{dinphilo_source, PhiloVariant};

fn main() {
    for (p, t) in [(3, 2), (5, 2)] {
        let source = dinphilo_source(PhiloVariant::Sketch, p, t);
        let options = Options {
            config: Config {
                hole_width: 3,
                unroll: 4,
                pool: 2,
                ..Config::default()
            },
            ..Options::default()
        };
        let synthesis = Synthesis::new(&source, options).expect("sketch compiles");
        let outcome = synthesis.run();
        let resolution = outcome.resolution.expect("a policy exists");
        println!(
            "P={p}, T={t}: resolved in {} iterations over {} states",
            outcome.stats.iterations, outcome.stats.states
        );
        let eat = synthesis
            .resolve_function("eat", &resolution.assignment)
            .unwrap();
        // Show just the policy choice.
        for line in eat.lines().take(11) {
            println!("  {line}");
        }
        println!("  ...\n");
    }
}
