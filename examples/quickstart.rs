//! Quickstart: synthesize your first concurrent sketch.
//!
//! The sketch below must make a two-thread counter exact. The
//! synthesizer chooses between a racy read-modify-write and a hardware
//! atomic increment, and must order a lock/unlock pair correctly
//! around a critical section.
//!
//! Run with: `cargo run --release --example quickstart`

use psketch_core::{Options, Synthesis};

fn main() {
    let sketch = r#"
        struct Lock { int owner = -1; }
        Lock lk;
        int hits;

        void lock(Lock l) { atomic (l.owner == -1) { l.owner = pid(); } }
        void unlock(Lock l) { assert l.owner == pid(); l.owner = -1; }

        void record() {
            int t = 0;
            reorder {
                lock(lk);
                t = hits;
                hits = t + 1;
                unlock(lk);
            }
        }

        harness void main() {
            lk = new Lock();
            fork (i; 2) {
                record();
            }
            assert hits == 2;
        }
    "#;

    let synthesis = Synthesis::new(sketch, Options::default()).expect("sketch compiles");
    println!(
        "candidate space: {} programs ({} holes)\n",
        synthesis.candidate_space(),
        synthesis.lowered().holes.num_holes()
    );

    let outcome = synthesis.run();
    match outcome.resolution {
        Some(resolution) => {
            println!(
                "resolved after {} iteration(s), {} model-checker states\n",
                outcome.stats.iterations, outcome.stats.states
            );
            println!(
                "{}",
                synthesis
                    .resolve_function("record", &resolution.assignment)
                    .expect("record exists")
            );
        }
        None => println!("the sketch cannot be resolved"),
    }
}
