//! The paper's headline example (§2): synthesizing the lock-free
//! queue's `Enqueue` and `Dequeue` from the Figure 1 / §8.2.1
//! sketches.
//!
//! Reproduces the development of the paper's Figures 1–4: the sketch
//! encodes a "soup" of statements (an assignment, an `AtomicSwap`, an
//! optional fixup) whose order and operands the synthesizer must
//! discover, validated against sequential consistency and structural
//! integrity over *all* interleavings of the `ed(ed|ed)` workload.
//!
//! Run with: `cargo run --release --example lockfree_queue`

use psketch_core::{Config, Options, Synthesis};
use psketch_suite::queue::{queue_source, DequeueVariant, EnqueueVariant};
use psketch_suite::workload::Workload;

fn main() {
    let workload = Workload::parse("ed(ed|ed)").expect("valid descriptor");
    let source = queue_source(EnqueueVariant::Full, DequeueVariant::SketchSoup, &workload);
    let options = Options {
        config: Config {
            unroll: workload.total_inserts() + 2,
            pool: workload.total_inserts() + 2,
            ..Config::default()
        },
        ..Options::default()
    };

    let synthesis = Synthesis::new(&source, options).expect("sketch compiles");
    println!(
        "queueDE2: |C| = {:.3e} candidate implementations",
        synthesis.candidate_space() as f64
    );
    println!("searching over every interleaving of ed(ed|ed)...\n");

    let outcome = synthesis.run();
    let resolution = outcome
        .resolution
        .expect("the paper's queue sketch resolves");
    println!(
        "resolved in {} iterations ({:.2}s total; paper: 10 iterations, 3091s in 2008)\n",
        outcome.stats.iterations,
        outcome.stats.total.as_secs_f64()
    );
    println!("=== synthesized Enqueue (cf. paper Figure 2) ===");
    println!(
        "{}",
        synthesis
            .resolve_function("Enqueue", &resolution.assignment)
            .unwrap()
    );
    println!("=== synthesized Dequeue (cf. paper Figure 4) ===");
    println!(
        "{}",
        synthesis
            .resolve_function("Dequeue", &resolution.assignment)
            .unwrap()
    );
}
